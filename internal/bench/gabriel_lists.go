package bench

// List- and symbol-manipulation Gabriel benchmarks: deriv/dderiv,
// destruct, div-iter/div-rec, traverse.

func init() {
	register(Program{
		Name:        "deriv",
		Description: "symbolic differentiation (higher-order map)",
		Source: `
(define (deriv-aux a) (list '/ (deriv a) a))
(define (deriv a)
  (cond
    [(not (pair? a)) (if (eq? a 'x) 1 0)]
    [(eq? (car a) '+) (cons '+ (map deriv (cdr a)))]
    [(eq? (car a) '-) (cons '- (map deriv (cdr a)))]
    [(eq? (car a) '*) (list '* a (cons '+ (map deriv-aux (cdr a))))]
    [(eq? (car a) '/)
     (list '-
           (list '/ (deriv (cadr a)) (caddr a))
           (list '/ (cadr a) (list '* (caddr a) (caddr a) (deriv (caddr a)))))]
    [else 'error]))
(define (run n)
  (if (zero? n)
      'done
      (begin
        (deriv '(+ (* 3 x x) (* a x x) (* b x) 5))
        (run (- n 1)))))
(run 2000)`,
		Expect: "done",
	})

	register(Program{
		Name:        "dderiv",
		Description: "table-driven symbolic differentiation",
		Source: `
(define (dderiv-aux a) (list '/ (dderiv a) a))
(define (+dderiv a) (cons '+ (map dderiv (cdr a))))
(define (-dderiv a) (cons '- (map dderiv (cdr a))))
(define (*dderiv a) (list '* a (cons '+ (map dderiv-aux (cdr a)))))
(define (/dderiv a)
  (list '-
        (list '/ (dderiv (cadr a)) (caddr a))
        (list '/ (cadr a) (list '* (caddr a) (caddr a) (dderiv (caddr a))))))
(define table
  (list (cons '+ +dderiv) (cons '- -dderiv) (cons '* *dderiv) (cons '/ /dderiv)))
(define (dderiv a)
  (if (not (pair? a))
      (if (eq? a 'x) 1 0)
      (let ([f (assq (car a) table)])
        (if f ((cdr f) a) 'error))))
(define (run n)
  (if (zero? n)
      'done
      (begin
        (dderiv '(+ (* 3 x x) (* a x x) (* b x) 5))
        (run (- n 1)))))
(run 2000)`,
		Expect: "done",
	})

	register(Program{
		Name:        "destruct",
		Description: "destructive list surgery with set-car!/set-cdr!",
		Source: `
(define (destructive n m)
  (let ([l (do ([i 10 (- i 1)] [a '() (cons '() a)]) ((= i 0) a))])
    (do ([i n (- i 1)]) ((= i 0) l)
      (cond
        [(null? (car l))
         (do ([l l (cdr l)]) ((null? l))
           (if (null? (car l)) (set-car! l (cons '() '())) #f)
           (nconc (car l) (do ([j m (- j 1)] [a '() (cons '() a)]) ((= j 0) a))))]
        [else
         (do ([l1 l (cdr l1)] [l2 (cdr l) (cdr l2)]) ((null? l2))
           (set-cdr! (do ([j (quotient (length (car l2)) 2) (- j 1)]
                          [a (car l2) (cdr a)])
                         ((zero? j) a)
                       (set-car! a i))
                     (let ([n (quotient (length (car l1)) 2)])
                       (cond
                         [(= n 0) (set-car! l1 '()) (car l1)]
                         [else
                          (do ([j n (- j 1)] [a (car l1) (cdr a)])
                              ((= j 1)
                               (let ([x (cdr a)]) (set-cdr! a '()) x))
                            (set-car! a i))]))))]))))
(define (nconc a b)
  (if (null? a) b (begin (set-cdr! (last-pair a) b) a)))
(length (destructive 600 50))`,
		Expect: "10",
	})

	register(Program{
		Name:        "div-iter",
		Description: "iterative halving of a 200-element list (tail recursion only)",
		Source: `
(define (create-n n)
  (do ([n n (- n 1)] [a '() (cons '() a)]) ((= n 0) a)))
(define ll (create-n 200))
(define (iterative-div2 l)
  (do ([l l (cddr l)] [a '() (cons (car l) a)]) ((null? l) a)))
(define (run n acc)
  (if (zero? n) acc (run (- n 1) (length (iterative-div2 ll)))))
(run 3000 0)`,
		Expect: "100",
	})

	register(Program{
		Name:        "div-rec",
		Description: "recursive halving of a 200-element list (deep non-tail recursion)",
		Source: `
(define (create-n n)
  (do ([n n (- n 1)] [a '() (cons '() a)]) ((= n 0) a)))
(define ll (create-n 200))
(define (recursive-div2 l)
  (if (null? l) '() (cons (car l) (recursive-div2 (cddr l)))))
(define (run n acc)
  (if (zero? n) acc (run (- n 1) (length (recursive-div2 ll)))))
(run 3000 0)`,
		Expect: "100",
	})

	register(Program{
		Name:        "traverse-init",
		Description: "creation of a 100-node doubly linked random graph",
		Source: traverseShared + `
(init-traverse)
'initialized`,
		Expect: "initialized",
	})

	register(Program{
		Name:        "traverse",
		Description: "repeated marking traversals of the random graph",
		Source: traverseShared + `
(init-traverse)
(run-traverse 30)`,
		Expect: "done",
	})
}

// traverseShared is a port of the Gabriel traverse benchmark. The
// original's defstruct nodes become 7-slot vectors; its random number
// generator becomes an explicit linear congruential generator so both
// engines agree deterministically.
const traverseShared = `
;; node: #(sons sons-count parents mark snb entry marker)
(define (make-node snb)
  (vector '() 0 '() #f snb 0 #f))
(define (node-sons n) (vector-ref n 0))
(define (node-parents n) (vector-ref n 2))
(define (node-mark n) (vector-ref n 3))
(define (node-snb n) (vector-ref n 4))
(define (set-node-sons! n v) (vector-set! n 0 v))
(define (set-node-parents! n v) (vector-set! n 2 v))
(define (set-node-mark! n v) (vector-set! n 3 v))

(define seed (box 74755))
(define (rand)
  (set-box! seed (modulo (* (unbox seed) 1309) 65536))
  (unbox seed))

(define nodes (box '()))
(define node-count 100)

(define (create-structure n)
  (let loop ([i 0] [acc '()])
    (if (= i n)
        (set-box! nodes (list->vector acc))
        (loop (+ i 1) (cons (make-node i) acc))))
  ;; connect each node to three random successors
  (let ([v (unbox nodes)])
    (let loop ([i 0])
      (if (= i n)
          'ok
          (let ([node (vector-ref v i)])
            (let inner ([k 0])
              (if (= k 3)
                  (loop (+ i 1))
                  (let ([child (vector-ref v (modulo (rand) n))])
                    (set-node-sons! node (cons child (node-sons node)))
                    (set-node-parents! child (cons node (node-parents child)))
                    (inner (+ k 1))))))))))

(define visit-count (box 0))

(define (mark-all node want)
  (if (eq? (node-mark node) want)
      #f
      (begin
        (set-node-mark! node want)
        (set-box! visit-count (+ (unbox visit-count) 1))
        (for-each (lambda (s) (mark-all s want)) (node-sons node))
        (for-each (lambda (p) (mark-all p want)) (node-parents node)))))

(define (init-traverse) (create-structure node-count))

(define (run-traverse iterations)
  (let loop ([i 0] [want #t])
    (if (= i iterations)
        'done
        (begin
          (mark-all (vector-ref (unbox nodes) 0) want)
          (loop (+ i 1) (not want))))))
`
