package bench

// I/O-flavoured Gabriel benchmarks. The originals print to and parse
// from files; here fprint/tprint render a large nested structure into
// the output sink, and fread re-parses the rendered text with a
// tokenizer written in Scheme (a stand-in for the reader, exercising
// character and string traffic).

func init() {
	register(Program{
		Name:        "fprint",
		Description: "printing a large nested list to the output sink",
		Source: ioShared + `
(define data (build-tree 6))
(define (run n)
  (if (zero? n) 'done (begin (display data) (newline) (run (- n 1)))))
(run 20)`,
		Expect: "done",
	})

	register(Program{
		Name:        "tprint",
		Description: "printing with explicit element-by-element traversal",
		Source: ioShared + `
(define data (build-tree 6))
(define (print-tree t)
  (if (pair? t)
      (begin
        (write-char #\()
        (let loop ([t t] [first #t])
          (cond
            [(null? t) (write-char #\))]
            [else
             (if first #f (write-char #\space))
             (print-tree (car t))
             (loop (cdr t) #f)]))
        'ok)
      (display t)))
(define (run n)
  (if (zero? n) 'done (begin (print-tree data) (newline) (run (- n 1)))))
(run 20)`,
		Expect: "done",
	})

	register(Program{
		Name:        "fread",
		Description: "tokenizing a rendered expression with a Scheme-level scanner",
		Source: ioShared + `
;; Re-scan the printed representation of the tree: a miniature reader.
(define input "((abc 12 (de 345 fgh) 6789 (i (j (k 10))))(lmnop 11 12 13)(q r s t u v w x y z))")

(define (scan str)
  (let ([len (string-length str)])
    (let loop ([i 0] [tokens 0] [depth 0] [maxdepth 0])
      (if (>= i len)
          (list tokens maxdepth)
          (let ([ch (string-ref str i)])
            (cond
              [(char=? ch #\()
               (loop (+ i 1) (+ tokens 1) (+ depth 1) (max maxdepth (+ depth 1)))]
              [(char=? ch #\))
               (loop (+ i 1) (+ tokens 1) (- depth 1) maxdepth)]
              [(char=? ch #\space) (loop (+ i 1) tokens depth maxdepth)]
              [(char-numeric? ch)
               (let eat ([j i] [v 0])
                 (if (and (< j len) (char-numeric? (string-ref str j)))
                     (eat (+ j 1) (+ (* v 10) (- (char->integer (string-ref str j))
                                                 (char->integer #\0))))
                     (loop j (+ tokens 1) depth maxdepth)))]
              [else
               (let eat ([j i])
                 (if (and (< j len) (char-alphabetic? (string-ref str j)))
                     (eat (+ j 1))
                     (loop j (+ tokens 1) depth maxdepth)))]))))))
(define (run n acc)
  (if (zero? n) acc (run (- n 1) (scan input))))
(run 400 '())`,
		Expect: "(40 5)",
	})
}

const ioShared = `
(define (build-tree d)
  (if (zero? d)
      'leaf
      (list (build-tree (- d 1)) d (build-tree (- d 1)) 'pad)))
`
