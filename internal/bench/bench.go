// Package bench holds the benchmark suite of the paper's evaluation
// (Table 1/Table 2): ports of the Gabriel benchmarks to the mini-Scheme
// dialect, plus four substitute "large programs" standing in for the
// paper's Compiler/DDD/Similix/SoftScheme workloads (see DESIGN.md §5),
// and the harness that regenerates every table and figure.
package bench

import (
	"fmt"
	"sort"
)

// Program is one benchmark.
type Program struct {
	Name string
	// Description mirrors Table 1's one-line descriptions.
	Description string
	// Source is the mini-Scheme program text. Its final expression's
	// value is the program result.
	Source string
	// Expect is the expected result in write notation ("" skips the
	// check).
	Expect string
	// Large marks the Table 1 "large program" substitutes; the rest are
	// Gabriel benchmarks.
	Large bool
}

var registry = map[string]*Program{}
var order []string

func register(p Program) {
	if _, dup := registry[p.Name]; dup {
		panic("bench: duplicate benchmark " + p.Name)
	}
	cp := p
	registry[p.Name] = &cp
	order = append(order, p.Name)
}

// ByName returns a registered benchmark.
func ByName(name string) (*Program, error) {
	p, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("bench: unknown benchmark %q", name)
	}
	return p, nil
}

// All returns every benchmark in registration order (large programs
// first, then the Gabriel suite, matching the paper's tables).
func All() []*Program {
	out := make([]*Program, 0, len(registry))
	for _, n := range order {
		out = append(out, registry[n])
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Large != out[j].Large {
			return out[i].Large
		}
		return false
	})
	return out
}

// Names returns all benchmark names in table order.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, p := range all {
		out[i] = p.Name
	}
	return out
}
