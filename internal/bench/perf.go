package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"strings"
	"testing"

	"repro/internal/compiler"
	"repro/internal/vm"
)

// PerfSchema identifies the BENCH_*.json format. Bump the version when
// a field changes meaning; the comparer refuses to compare across
// schema versions.
const PerfSchema = "lsr/bench-perf/v1"

// PerfEntry is the measurement for one benchmark program on one engine.
type PerfEntry struct {
	// Program is the benchmark name (bench.ByName).
	Program string `json:"program"`
	// Engine is the execution engine measured ("threaded").
	Engine string `json:"engine"`
	// WallNsPerOp is wall-clock nanoseconds per complete run of the
	// program (compile excluded), from testing.Benchmark.
	WallNsPerOp int64 `json:"wall_ns_per_op"`
	// SimCycles is the simulated cycle count of one run under the paper
	// configuration. It is deterministic: any drift between a baseline
	// and a candidate is a semantic change, never noise, so the
	// comparer requires exact equality.
	SimCycles int64 `json:"sim_cycles"`
	// AllocsPerOp is heap allocations per run, from testing.Benchmark.
	AllocsPerOp int64 `json:"allocs_per_op"`
}

// PerfReport is the schema-versioned payload written to BENCH_*.json.
type PerfReport struct {
	Schema string `json:"schema"`
	// Suite names the program subset measured ("quick" or "full").
	Suite string `json:"suite"`
	// GoVersion records the toolchain that produced the numbers; wall
	// times are only comparable within a reasonably similar toolchain
	// and machine, which is why the wall gate is a ratio with a
	// threshold rather than an absolute bound.
	GoVersion string      `json:"go_version"`
	Entries   []PerfEntry `json:"entries"`
}

// MeasurePerf benchmarks every program on the threaded engine and
// returns a report. Each entry's wall time covers Machine.Run only
// (compilation is hoisted out of the timed loop), on the counters-off
// fast path, matching how the paper's tables are produced.
func MeasurePerf(progs []*Program, suite string) (*PerfReport, error) {
	rep := &PerfReport{Schema: PerfSchema, Suite: suite, GoVersion: runtime.Version()}
	for _, p := range progs {
		c, err := compiler.Compile(p.Source, PaperOptions())
		if err != nil {
			return nil, fmt.Errorf("perf: %s: %w", p.Name, err)
		}
		run := func() (*vm.Machine, error) {
			m := vm.New(c.Program, io.Discard)
			m.Counting = vm.CountEssential
			m.MaxSteps = BenchFuel
			_, err := m.Run()
			return m, err
		}
		m, err := run()
		if err != nil {
			return nil, fmt.Errorf("perf: %s: %w", p.Name, err)
		}
		simCycles := m.Counters.Cycles
		var runErr error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := run(); err != nil {
					runErr = err
					b.FailNow()
				}
			}
		})
		if runErr != nil {
			return nil, fmt.Errorf("perf: %s: %w", p.Name, runErr)
		}
		rep.Entries = append(rep.Entries, PerfEntry{
			Program:     p.Name,
			Engine:      "threaded",
			WallNsPerOp: r.NsPerOp(),
			SimCycles:   simCycles,
			AllocsPerOp: r.AllocsPerOp(),
		})
	}
	return rep, nil
}

// WriteJSON renders the report as indented JSON with a trailing
// newline, the exact bytes committed as BENCH_*.json.
func (r *PerfReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadPerfReport parses a BENCH_*.json payload and checks its schema.
func ReadPerfReport(data []byte) (*PerfReport, error) {
	var r PerfReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("perf: parse baseline: %w", err)
	}
	if r.Schema != PerfSchema {
		return nil, fmt.Errorf("perf: baseline schema %q, want %q", r.Schema, PerfSchema)
	}
	return &r, nil
}

// ComparePerf gates a candidate report against a committed baseline.
// Three checks:
//
//   - sim_cycles must match exactly per program. Simulated cycles are
//     deterministic, so any difference is a real semantic change to the
//     compiler or cost model and must be an intentional, reviewed
//     baseline update.
//   - the geometric mean of the per-program wall-time ratios
//     (candidate/baseline) must not exceed 1+wallThreshold. The geomean
//     smooths per-program timer noise; threshold 0.15 catches real
//     regressions while tolerating CI jitter.
//   - allocs_per_op must not grow by more than allocThreshold on any
//     single entry. Allocation counts are near-deterministic (no timer
//     noise), so the gate is per-entry rather than a geomean: one
//     program picking up an allocation in its inner loop is exactly the
//     regression the gate exists to catch, and a geomean would let the
//     other programs dilute it. A baseline of zero allocations must
//     stay zero.
//
// Returns a descriptive error on failure, nil on pass.
func ComparePerf(base, cur *PerfReport, wallThreshold, allocThreshold float64) error {
	baseBy := map[string]PerfEntry{}
	for _, e := range base.Entries {
		baseBy[e.Program+"/"+e.Engine] = e
	}
	var problems []string
	logRatioSum, n := 0.0, 0
	for _, e := range cur.Entries {
		b, ok := baseBy[e.Program+"/"+e.Engine]
		if !ok {
			continue // new program: nothing to compare
		}
		if e.SimCycles != b.SimCycles {
			problems = append(problems, fmt.Sprintf(
				"%s: sim_cycles %d, baseline %d (deterministic metric changed; update the baseline intentionally)",
				e.Program, e.SimCycles, b.SimCycles))
		}
		if b.WallNsPerOp > 0 && e.WallNsPerOp > 0 {
			logRatioSum += math.Log(float64(e.WallNsPerOp) / float64(b.WallNsPerOp))
			n++
		}
		if float64(e.AllocsPerOp) > float64(b.AllocsPerOp)*(1+allocThreshold) {
			problems = append(problems, fmt.Sprintf(
				"%s: allocs_per_op %d, baseline %d (exceeds %.0f%% growth; fix the allocation or update the baseline intentionally)",
				e.Program, e.AllocsPerOp, b.AllocsPerOp, allocThreshold*100))
		}
	}
	if n > 0 {
		geomean := math.Exp(logRatioSum / float64(n))
		if geomean > 1+wallThreshold {
			problems = append(problems, fmt.Sprintf(
				"wall time geomean ratio %.3f exceeds %.3f (threshold %.0f%%)",
				geomean, 1+wallThreshold, wallThreshold*100))
		}
	}
	if len(problems) > 0 {
		return fmt.Errorf("perf gate failed:\n  %s", strings.Join(problems, "\n  "))
	}
	return nil
}
