package bench

// rewrite: the "DDD" stand-in — a derivation-by-rewriting system that
// repeatedly transforms a hardware-ish term language (boolean/mux/adder
// terms) to a normal form through staged rule application, the same
// fixed-point term-rewriting flavour as the DDD hardware derivation
// system.

func init() {
	register(Program{
		Name:        "rewrite",
		Description: "staged term rewriting to normal form (DDD stand-in)",
		Large:       true,
		Source:      rewriteSource,
		Expect:      "(68 268)",
	})
}

const rewriteSource = `
;; Terms: (and x y) (or x y) (not x) (xor x y) (mux c a b) 0 1 symbols.

(define (mk op args) (cons op args))
(define (op-of t) (car t))
(define (args-of t) (cdr t))
(define (atom? t) (not (pair? t)))

;; one top-level simplification step; returns #f if no rule applies
(define (step t)
  (if (atom? t)
      #f
      (let ([op (op-of t)] [as (args-of t)])
        (case op
          [(not)
           (let ([x (car as)])
             (cond
               [(eqv? x 0) 1]
               [(eqv? x 1) 0]
               [(and (pair? x) (eq? (op-of x) 'not)) (car (args-of x))]
               [else #f]))]
          [(and)
           (let ([x (car as)] [y (cadr as)])
             (cond
               [(eqv? x 0) 0]
               [(eqv? y 0) 0]
               [(eqv? x 1) y]
               [(eqv? y 1) x]
               [(equal? x y) x]
               [else #f]))]
          [(or)
           (let ([x (car as)] [y (cadr as)])
             (cond
               [(eqv? x 1) 1]
               [(eqv? y 1) 1]
               [(eqv? x 0) y]
               [(eqv? y 0) x]
               [(equal? x y) x]
               [else #f]))]
          [(xor)
           (let ([x (car as)] [y (cadr as)])
             (cond
               [(eqv? x 0) y]
               [(eqv? y 0) x]
               [(equal? x y) 0]
               [else (mk 'or (list (mk 'and (list x (mk 'not (list y))))
                                   (mk 'and (list (mk 'not (list x)) y))))]))]
          [(mux)
           (let ([c (car as)] [a (cadr as)] [b (caddr as)])
             (cond
               [(eqv? c 1) a]
               [(eqv? c 0) b]
               [(equal? a b) a]
               [else (mk 'or (list (mk 'and (list c a))
                                   (mk 'and (list (mk 'not (list c)) b))))]))]
          [else #f]))))

;; full rewrite: innermost-first to fixpoint
(define (rewrite t)
  (if (atom? t)
      t
      (let ([t2 (mk (op-of t) (map rewrite (args-of t)))])
        (let ([r (step t2)])
          (if r (rewrite r) t2)))))

(define (term-size t)
  (if (atom? t)
      1
      (+ 1 (fold-left (lambda (acc x) (+ acc (term-size x))) 0 (args-of t)))))

;; a one-bit full adder derived from mux/xor primitives
(define (full-adder a b cin)
  (list (mk 'xor (list (mk 'xor (list a b)) cin))                     ; sum
        (mk 'or (list (mk 'and (list a b))
                      (mk 'and (list cin (mk 'xor (list a b))))))))   ; carry

;; chain n full adders (ripple carry), then derive its normal form
(define (ripple n)
  (let loop ([i 0] [cin 'c0] [terms '()])
    (if (= i n)
        terms
        (let* ([a (string->symbol (string-append "a" (number->string i)))]
               [b (string->symbol (string-append "b" (number->string i)))]
               [fa (full-adder a b cin)])
          (loop (+ i 1) (cadr fa) (cons (car fa) terms))))))

(define (derive n)
  (let* ([sums (ripple n)]
         [normal (map rewrite sums)]
         [before (fold-left (lambda (acc t) (+ acc (term-size t))) 0 sums)]
         [after (fold-left (lambda (acc t) (+ acc (term-size t))) 0 normal)])
    (list before after)))

;; sanity: rewriting with concrete bits must compute the right sums
(define (check)
  (let ([sum (rewrite (mk 'xor (list (mk 'xor (list 1 0)) 1)))])
    (if (eqv? sum 0) 'ok (error "adder broken" sum))))
(check)

(define (run k)
  (if (= k 1)
      (derive 4)
      (begin (derive 4) (run (- k 1)))))
(run 60)`
