package bench

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestRunLoadAgainstFake: the generator sustains traffic, computes
// sane percentiles, and the report round-trips through its JSON form.
func TestRunLoadAgainstFake(t *testing.T) {
	var hits [5]int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		for i, c := range loadCorpus {
			if r.URL.Path == c.path {
				hits[i]++
			}
		}
		w.Write([]byte(`{"ok":true}`))
	}))
	defer srv.Close()

	rep, err := RunLoad(LoadOptions{URL: srv.URL, Clients: 2, Duration: 200 * time.Millisecond, SLO: DefaultSLO})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != LoadSchema {
		t.Errorf("schema %q", rep.Schema)
	}
	if rep.Requests == 0 || rep.Errors != 0 {
		t.Errorf("requests=%d errors=%d", rep.Requests, rep.Errors)
	}
	if rep.P50Ms <= 0 || rep.P50Ms > rep.P95Ms || rep.P95Ms > rep.P99Ms {
		t.Errorf("percentile ordering p50=%.3f p95=%.3f p99=%.3f", rep.P50Ms, rep.P95Ms, rep.P99Ms)
	}
	if rep.ThroughputRPS <= 0 {
		t.Errorf("throughput %.2f", rep.ThroughputRPS)
	}
	if err := CheckSLO(rep, DefaultSLO); err != nil {
		t.Errorf("trivial local run failed the default SLO: %v", err)
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadLoadReport(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if *back != *rep {
		t.Errorf("report did not round-trip: %+v vs %+v", back, rep)
	}
}

// TestRunLoadAllErrors: a target that always fails produces an error,
// not a vacuous report.
func TestRunLoadAllErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()
	if _, err := RunLoad(LoadOptions{URL: srv.URL, Clients: 1, Duration: 50 * time.Millisecond}); err == nil {
		t.Fatal("all-error run reported success")
	}
}

// TestCompareLoadSeededRegression is the negative proof for the CI
// gate: a candidate whose p99, throughput or error rate violates the
// committed baseline's SLO bounds must fail CompareLoad.
func TestCompareLoadSeededRegression(t *testing.T) {
	base := &LoadReport{
		Schema: LoadSchema, Clients: 8, DurationSec: 10,
		Requests: 1000, Errors: 0,
		ThroughputRPS: 100, P50Ms: 5, P95Ms: 20, P99Ms: 50,
		SLO: SLO{P99MsMax: 2000, ThroughputMin: 5, ErrorRateMax: 0.01},
	}
	good := *base
	if err := CompareLoad(base, &good); err != nil {
		t.Fatalf("healthy candidate failed the gate: %v", err)
	}

	slowP99 := *base
	slowP99.P99Ms = 5000
	if err := CompareLoad(base, &slowP99); err == nil {
		t.Error("p99 regression passed the gate")
	} else if !strings.Contains(err.Error(), "p99") {
		t.Errorf("p99 regression error does not name the metric: %v", err)
	}

	slowTput := *base
	slowTput.ThroughputRPS = 1
	if err := CompareLoad(base, &slowTput); err == nil {
		t.Error("throughput regression passed the gate")
	}

	errors := *base
	errors.Errors = 100
	if err := CompareLoad(base, &errors); err == nil {
		t.Error("error-rate regression passed the gate")
	}

	// The candidate cannot loosen its own gate: bounds come from the
	// baseline even if the candidate report carries laxer ones.
	lax := slowP99
	lax.SLO = SLO{P99MsMax: 1e9}
	if err := CompareLoad(base, &lax); err == nil {
		t.Error("candidate with self-declared lax SLO passed the gate")
	}

	wrongSchema := *base
	wrongSchema.Schema = "lsr/bench-load/v0"
	if err := CompareLoad(base, &wrongSchema); err == nil {
		t.Error("schema mismatch passed the gate")
	}
}

// TestReadLoadReportRejectsWrongSchema mirrors the perf reader's
// contract.
func TestReadLoadReportRejectsWrongSchema(t *testing.T) {
	if _, err := ReadLoadReport([]byte(`{"schema":"nope"}`)); err == nil {
		t.Fatal("wrong schema accepted")
	}
	if _, err := ReadLoadReport([]byte(`{garbage`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

// TestPercentileNearestRank pins the quantile convention.
func TestPercentileNearestRank(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		q    float64
		want float64
	}{{0.50, 5}, {0.95, 10}, {0.99, 10}, {0.10, 1}}
	for _, c := range cases {
		if got := percentile(sorted, c.q); got != c.want {
			t.Errorf("percentile(%.2f) = %g, want %g", c.q, got, c.want)
		}
	}
	if got := percentile([]float64{7}, 0.99); got != 7 {
		t.Errorf("single-sample percentile = %g", got)
	}
}
