package bench

import (
	"fmt"
	"strings"

	"repro/internal/codegen"
	"repro/internal/compiler"
	"repro/internal/vm"
)

// This file regenerates every table of the paper's evaluation. Each
// TableN function returns structured rows plus a formatted rendering;
// EXPERIMENTS.md records the outputs against the paper's numbers.

// --- Table 1: benchmark descriptions ---------------------------------

// Table1 renders the benchmark inventory (descriptions, per the paper's
// Table 1, with the large-program substitutions of DESIGN.md §5).
func Table1() string {
	var b strings.Builder
	b.WriteString("Table 1: benchmark suite\n")
	fmt.Fprintf(&b, "%-14s %-6s %s\n", "Benchmark", "Lines", "Description")
	for _, p := range All() {
		lines := strings.Count(p.Source, "\n")
		fmt.Fprintf(&b, "%-14s %-6d %s\n", p.Name, lines, p.Description)
	}
	return b.String()
}

// --- Table 2: dynamic call-graph summary ------------------------------

// Table2Row is one benchmark's activation breakdown.
type Table2Row struct {
	Name        string
	Activations int64
	// Fractions of classified activations.
	SynLeaf, NonSynLeaf, NonSynInternal, SynInternal float64
}

// EffectiveLeaf is the paper's headline fraction.
func (r Table2Row) EffectiveLeaf() float64 { return r.SynLeaf + r.NonSynLeaf }

// Table2 runs every benchmark under the paper configuration and
// classifies activations as in the paper's Table 2.
func Table2(progs []*Program) ([]Table2Row, string, error) {
	var rows []Table2Row
	for _, p := range progs {
		m, err := Measure(p, PaperOptions())
		if err != nil {
			return nil, "", err
		}
		sl, nsl, nsi, si := m.Counters.Breakdown()
		rows = append(rows, Table2Row{
			Name:        p.Name,
			Activations: m.Counters.ClassifiedActivations(),
			SynLeaf:     sl, NonSynLeaf: nsl, NonSynInternal: nsi, SynInternal: si,
		})
	}
	var b strings.Builder
	b.WriteString("Table 2: dynamic call graph summary\n")
	fmt.Fprintf(&b, "%-14s %12s  %8s %8s %8s %8s %8s\n",
		"Benchmark", "Activations", "synleaf", "nsleaf", "effleaf", "nsint", "synint")
	var sumSL, sumNSL, sumNSI, sumSI float64
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %12d  %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n",
			r.Name, r.Activations, r.SynLeaf*100, r.NonSynLeaf*100,
			r.EffectiveLeaf()*100, r.NonSynInternal*100, r.SynInternal*100)
		sumSL += r.SynLeaf
		sumNSL += r.NonSynLeaf
		sumNSI += r.NonSynInternal
		sumSI += r.SynInternal
	}
	n := float64(len(rows))
	fmt.Fprintf(&b, "%-14s %12s  %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n",
		"Average", "", sumSL/n*100, sumNSL/n*100, (sumSL+sumNSL)/n*100,
		sumNSI/n*100, sumSI/n*100)
	b.WriteString("\n(paper: syntactic leaves under one third of activations; effective leaves over two thirds)\n")
	return rows, b.String(), nil
}

// --- Table 3: stack references and speedup by save strategy ----------

// Table3Row compares the three save strategies against the 0-register
// baseline on one benchmark.
type Table3Row struct {
	Name                                            string
	BaseRefs, LazyRefs, EarlyRefs, LateRefs         int64
	BaseCycles, LazyCycles, EarlyCycles, LateCycles int64
}

func reduction(base, v int64) float64 {
	if base == 0 {
		return 0
	}
	return 1 - float64(v)/float64(base)
}

func speedup(base, v int64) float64 {
	if v == 0 {
		return 0
	}
	return float64(base)/float64(v) - 1
}

// Reductions returns the three stack-reference reductions (lazy, early,
// late).
func (r Table3Row) Reductions() (lazy, early, late float64) {
	return reduction(r.BaseRefs, r.LazyRefs),
		reduction(r.BaseRefs, r.EarlyRefs),
		reduction(r.BaseRefs, r.LateRefs)
}

// Speedups returns the three run-time improvements under the cost model.
func (r Table3Row) Speedups() (lazy, early, late float64) {
	return speedup(r.BaseCycles, r.LazyCycles),
		speedup(r.BaseCycles, r.EarlyCycles),
		speedup(r.BaseCycles, r.LateCycles)
}

// Table3 reproduces the reduction-of-stack-references table: each
// benchmark under lazy/early/late saves with six argument registers,
// against the no-argument-register baseline.
func Table3(progs []*Program) ([]Table3Row, string, error) {
	var rows []Table3Row
	for _, p := range progs {
		base, err := MeasureFast(p, BaselineOptions())
		if err != nil {
			return nil, "", err
		}
		lazy, err := MeasureFast(p, StrategyOptions(codegen.SaveLazy))
		if err != nil {
			return nil, "", err
		}
		early, err := MeasureFast(p, StrategyOptions(codegen.SaveEarly))
		if err != nil {
			return nil, "", err
		}
		late, err := MeasureFast(p, StrategyOptions(codegen.SaveLate))
		if err != nil {
			return nil, "", err
		}
		rows = append(rows, Table3Row{
			Name:     p.Name,
			BaseRefs: base.Counters.StackRefs(), BaseCycles: base.Counters.Cycles,
			LazyRefs: lazy.Counters.StackRefs(), LazyCycles: lazy.Counters.Cycles,
			EarlyRefs: early.Counters.StackRefs(), EarlyCycles: early.Counters.Cycles,
			LateRefs: late.Counters.StackRefs(), LateCycles: late.Counters.Cycles,
		})
	}
	var b strings.Builder
	b.WriteString("Table 3: stack-reference reduction and speedup vs 0-register baseline\n")
	fmt.Fprintf(&b, "%-14s  %16s  %16s  %16s\n", "", "Lazy Save", "Early Save", "Late Save")
	fmt.Fprintf(&b, "%-14s  %8s %7s  %8s %7s  %8s %7s\n",
		"Benchmark", "refs", "perf", "refs", "perf", "refs", "perf")
	var s [6]float64
	for _, r := range rows {
		lr, er, tr := r.Reductions()
		lp, ep, tp := r.Speedups()
		fmt.Fprintf(&b, "%-14s  %7.0f%% %6.0f%%  %7.0f%% %6.0f%%  %7.0f%% %6.0f%%\n",
			r.Name, lr*100, lp*100, er*100, ep*100, tr*100, tp*100)
		s[0] += lr
		s[1] += lp
		s[2] += er
		s[3] += ep
		s[4] += tr
		s[5] += tp
	}
	n := float64(len(rows))
	fmt.Fprintf(&b, "%-14s  %7.0f%% %6.0f%%  %7.0f%% %6.0f%%  %7.0f%% %6.0f%%\n",
		"Average", s[0]/n*100, s[1]/n*100, s[2]/n*100, s[3]/n*100, s[4]/n*100, s[5]/n*100)
	b.WriteString("\n(paper: lazy 72%/43%, early 58%/32%, late 65%/36%)\n")
	return rows, b.String(), nil
}

// --- Table 4: Scheme (caller-save lazy) vs C (callee-save early) ------

// takSource is the Table 4/5 kernel; the paper uses tak(26, 18, 9) on
// real hardware — the simulator runs tak(20, 14, 7), which preserves the
// call structure at a tractable scale.
const takSource = `
(define (tak x y z)
  (if (not (< y x)) z
      (tak (tak (- x 1) y z) (tak (- y 1) z x) (tak (- z 1) x y))))
(tak 20 14 7)`

var takProgram = &Program{
	Name:        "tak-20-14-7",
	Description: "Table 4/5 kernel",
	Source:      takSource,
	Expect:      "8",
}

// Table4Row is one compiler configuration on tak.
type Table4Row struct {
	Name   string
	Cycles int64
	Refs   int64
}

// Table4 reproduces the tak comparison: the "C compiler" rows are the
// callee-save early-save configuration (what cc/gcc do), the "Chez" row
// is caller-save lazy saves. The paper reports Chez 14% faster than cc.
func Table4() ([]Table4Row, string, error) {
	configs := []struct {
		name string
		opts compiler.Options
	}{
		{"C compiler (callee-save, early)", CalleeSaveOptions(codegen.SaveEarly)},
		{"Chez (caller-save, lazy)", PaperOptions()},
	}
	var rows []Table4Row
	for _, c := range configs {
		m, err := MeasureFast(takProgram, c.opts)
		if err != nil {
			return nil, "", err
		}
		rows = append(rows, Table4Row{Name: c.name, Cycles: m.Counters.Cycles, Refs: m.Counters.StackRefs()})
	}
	var b strings.Builder
	b.WriteString("Table 4: tak(20,14,7) — save-strategy comparison (cycles under the cost model)\n")
	base := rows[0].Cycles
	for _, r := range rows {
		fmt.Fprintf(&b, "%-32s %12d cycles  %10d stack refs  speedup %5.1f%%\n",
			r.Name, r.Cycles, r.Refs, speedup(base, r.Cycles)*100)
	}
	b.WriteString("\n(paper: cc 0%, gcc 5%, Chez 14%)\n")
	return rows, b.String(), nil
}

// --- Table 5: callee-save early vs lazy vs caller-save lazy -----------

// Table5 reproduces the hand-modified-assembly study: early and lazy
// save placement for callee-save registers, plus caller-save lazy.
func Table5() ([]Table4Row, string, error) {
	configs := []struct {
		name string
		opts compiler.Options
	}{
		{"callee-save, early saves", CalleeSaveOptions(codegen.SaveEarly)},
		{"callee-save, lazy saves", CalleeSaveOptions(codegen.SaveLazy)},
		{"caller-save, lazy saves", PaperOptions()},
	}
	var rows []Table4Row
	for _, c := range configs {
		m, err := MeasureFast(takProgram, c.opts)
		if err != nil {
			return nil, "", err
		}
		rows = append(rows, Table4Row{Name: c.name, Cycles: m.Counters.Cycles, Refs: m.Counters.StackRefs()})
	}
	var b strings.Builder
	b.WriteString("Table 5: tak(20,14,7) — callee-save early vs lazy vs caller-save lazy\n")
	early := rows[0].Cycles
	for _, r := range rows {
		fmt.Fprintf(&b, "%-28s %12d cycles  %10d stack refs  speedup over early %5.1f%%\n",
			r.Name, r.Cycles, r.Refs, speedup(early, r.Cycles)*100)
	}
	b.WriteString("\n(paper: lazy callee-save 60-91% faster than early; caller-save lazy slightly better still)\n")
	return rows, b.String(), nil
}

// --- §3.1: shuffle statistics -----------------------------------------

// ShuffleRow is per-benchmark static shuffle data.
type ShuffleRow struct {
	Name            string
	CallSites       int
	CyclicSites     int
	GreedyTemps     int
	OptimalTemps    int
	SitesOptimal    int
	SitesSuboptimal int
	WorstExtra      int
}

// ShuffleStats compiles every benchmark with the exhaustive-optimal
// comparison enabled and reports the §3.1 optimality statistics: the
// fraction of cyclic call sites (paper: 7%) and how often greedy matches
// the optimum (paper: all but 6 of 20,245 sites, at most one extra
// temporary).
func ShuffleStats(progs []*Program) ([]ShuffleRow, string, error) {
	var rows []ShuffleRow
	for _, p := range progs {
		opts := PaperOptions()
		opts.ComputeShuffleStats = true
		c, err := compiler.Compile(p.Source, opts)
		if err != nil {
			return nil, "", err
		}
		rows = append(rows, ShuffleRow{
			Name:            p.Name,
			CallSites:       c.Stats.CallSites,
			CyclicSites:     c.Stats.CyclicCallSites,
			GreedyTemps:     c.Stats.ShuffleTemps,
			OptimalTemps:    c.Stats.OptimalTemps,
			SitesOptimal:    c.Stats.SitesOptimal,
			SitesSuboptimal: c.Stats.SitesSuboptimal,
			WorstExtra:      c.Stats.ExtraTempsWorst,
		})
	}
	var b strings.Builder
	b.WriteString("Shuffle statistics (§3.1)\n")
	fmt.Fprintf(&b, "%-14s %8s %8s %8s %8s %8s\n",
		"Benchmark", "sites", "cyclic", "greedy", "optimal", "subopt")
	tot := ShuffleRow{}
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %8d %8d %8d %8d %8d\n",
			r.Name, r.CallSites, r.CyclicSites, r.GreedyTemps, r.OptimalTemps, r.SitesSuboptimal)
		tot.CallSites += r.CallSites
		tot.CyclicSites += r.CyclicSites
		tot.GreedyTemps += r.GreedyTemps
		tot.OptimalTemps += r.OptimalTemps
		tot.SitesOptimal += r.SitesOptimal
		tot.SitesSuboptimal += r.SitesSuboptimal
		if r.WorstExtra > tot.WorstExtra {
			tot.WorstExtra = r.WorstExtra
		}
	}
	fmt.Fprintf(&b, "%-14s %8d %8d %8d %8d %8d\n",
		"Total", tot.CallSites, tot.CyclicSites, tot.GreedyTemps, tot.OptimalTemps, tot.SitesSuboptimal)
	fmt.Fprintf(&b, "cyclic call sites: %.1f%%  (paper: 7%%)\n",
		100*float64(tot.CyclicSites)/float64(max(tot.CallSites, 1)))
	fmt.Fprintf(&b, "greedy optimal at %d of %d sites; worst excess %d temp(s)  (paper: all but 6 of 20245, ≤1 extra)\n",
		tot.SitesOptimal, tot.SitesOptimal+tot.SitesSuboptimal, tot.WorstExtra)
	return rows, b.String(), nil
}

// --- §4: register count sweep ------------------------------------------

// SweepRow is one (registers, shuffler) cell of the §4 sweep.
type SweepRow struct {
	Regs         int
	GreedyCycles int64
	NaiveCycles  int64
}

// RegisterSweep reproduces §4's register study on a benchmark: cycles as
// the number of argument/user registers grows from 0 to 6, with the
// greedy shuffler and with the naive (pre-greedy) one. The paper reports
// monotone improvement through six registers with greedy, and that
// without shuffling "performance actually decreased after two argument
// registers".
func RegisterSweep(p *Program) ([]SweepRow, string, error) {
	var rows []SweepRow
	for c := 0; c <= 6; c++ {
		g, err := MeasureFast(p, RegistersOptions(c, c, codegen.ShuffleGreedy))
		if err != nil {
			return nil, "", err
		}
		n, err := MeasureFast(p, RegistersOptions(c, c, codegen.ShuffleNaive))
		if err != nil {
			return nil, "", err
		}
		rows = append(rows, SweepRow{Regs: c, GreedyCycles: g.Counters.Cycles, NaiveCycles: n.Counters.Cycles})
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Register sweep (§4) on %s: cycles by argument/user register count\n", p.Name)
	fmt.Fprintf(&b, "%6s %16s %16s %16s %16s\n", "regs", "greedy", "speedup", "naive", "speedup")
	base := rows[0].GreedyCycles
	for _, r := range rows {
		fmt.Fprintf(&b, "%6d %16d %15.1f%% %16d %15.1f%%\n",
			r.Regs, r.GreedyCycles, speedup(base, r.GreedyCycles)*100,
			r.NaiveCycles, speedup(base, r.NaiveCycles)*100)
	}
	return rows, b.String(), nil
}

// --- §2.2: eager vs lazy restores ---------------------------------------

// RestoreRow compares restore policies on one benchmark.
type RestoreRow struct {
	Name                        string
	EagerCycles, LazyCycles     int64
	EagerRestores, LazyRestores int64 // executed restore loads
}

// RestoreStudy reproduces the §2.2 experiment: "the eager approach
// produced code that ran just as fast as the code produced by the lazy
// approach" — lazy executes fewer restores but pays load-use stalls.
func RestoreStudy(progs []*Program) ([]RestoreRow, string, error) {
	var rows []RestoreRow
	for _, p := range progs {
		eager, err := Measure(p, PaperOptions())
		if err != nil {
			return nil, "", err
		}
		lazyOpts := PaperOptions()
		lazyOpts.Restores = codegen.RestoreLazy
		lazy, err := Measure(p, lazyOpts)
		if err != nil {
			return nil, "", err
		}
		rows = append(rows, RestoreRow{
			Name:        p.Name,
			EagerCycles: eager.Counters.Cycles, LazyCycles: lazy.Counters.Cycles,
			EagerRestores: eager.Counters.ReadsByKind[vm.KindRestore],
			LazyRestores:  lazy.Counters.ReadsByKind[vm.KindRestore],
		})
	}
	var b strings.Builder
	b.WriteString("Restore policy study (§2.2): eager vs lazy restores\n")
	fmt.Fprintf(&b, "%-14s %14s %14s %9s\n", "Benchmark", "eager cycles", "lazy cycles", "lazy/eager")
	var ratioSum float64
	for _, r := range rows {
		ratio := float64(r.LazyCycles) / float64(max64(r.EagerCycles, 1))
		ratioSum += ratio
		fmt.Fprintf(&b, "%-14s %14d %14d %8.3f\n", r.Name, r.EagerCycles, r.LazyCycles, ratio)
	}
	fmt.Fprintf(&b, "geomean-ish average ratio: %.3f  (paper: ≈1.0 — eager ran just as fast)\n",
		ratioSum/float64(len(rows)))
	return rows, b.String(), nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// --- §6: static branch prediction ---------------------------------------

// BranchRow compares predicted vs unpredicted cycles with a mispredict
// penalty.
type BranchRow struct {
	Name                   string
	Unpredicted, Predicted int64
	Branches, Mispredicts  int64
}

// BranchStudy evaluates the §6 extension: predict paths without calls.
// The paper's preliminary experiments suggest a small (2–3%) but
// consistent improvement.
func BranchStudy(progs []*Program, penalty int64) ([]BranchRow, string, error) {
	var rows []BranchRow
	for _, p := range progs {
		// Baseline: static prediction disabled; every conditional pays
		// half the penalty on average (no prediction information).
		base, err := measureWithBranchCost(p, PaperOptions(), penalty)
		if err != nil {
			return nil, "", err
		}
		predOpts := PaperOptions()
		predOpts.PredictBranches = true
		pred, err := measureWithBranchCost(p, predOpts, penalty)
		if err != nil {
			return nil, "", err
		}
		rows = append(rows, BranchRow{
			Name:        p.Name,
			Unpredicted: base.cycles, Predicted: pred.cycles,
			Branches: pred.branches, Mispredicts: pred.mispredicts,
		})
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Static branch prediction study (§6), mispredict penalty %d cycles\n", penalty)
	fmt.Fprintf(&b, "%-14s %14s %14s %9s %12s\n", "Benchmark", "unpredicted", "predicted", "gain", "mispredict%")
	var gainSum float64
	for _, r := range rows {
		gain := speedup(r.Unpredicted, r.Predicted)
		gainSum += gain
		mp := 100 * float64(r.Mispredicts) / float64(max64(r.Branches, 1))
		fmt.Fprintf(&b, "%-14s %14d %14d %8.1f%% %11.1f%%\n",
			r.Name, r.Unpredicted, r.Predicted, gain*100, mp)
	}
	fmt.Fprintf(&b, "average gain: %.1f%%  (paper: 2-3%% small but consistent)\n",
		100*gainSum/float64(len(rows)))
	return rows, b.String(), nil
}

type branchMeasure struct {
	cycles, branches, mispredicts int64
}

// measureWithBranchCost runs p charging `penalty` cycles per
// mispredicted annotated branch; unannotated branches are charged the
// penalty on half their executions (no prediction information).
func measureWithBranchCost(p *Program, opts compiler.Options, penalty int64) (branchMeasure, error) {
	cost := vm.DefaultCostModel()
	cost.BranchMispredict = penalty
	m, err := MeasureWithCost(p, opts, cost)
	if err != nil {
		return branchMeasure{}, err
	}
	c := m.Counters
	cycles := c.Cycles + (c.Branches-c.PredictedBranches)/2*penalty
	return branchMeasure{cycles: cycles, branches: c.Branches, mispredicts: c.Mispredicts}, nil
}
