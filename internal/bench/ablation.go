package bench

import (
	"fmt"
	"strings"

	"repro/internal/codegen"
)

// AblationRow compares the revised S_t/S_f placement against the simple
// one-set algorithm of §2.1.1 on one benchmark.
type AblationRow struct {
	Name                      string
	RevisedRefs, SimpleRefs   int64
	RevisedSaves, SimpleSaves int64 // executed save stores
}

// andCallPattern is a microbenchmark of the exact §2.1.2 deficiency: a
// call inside a short-circuit `and` used as an if-test, with a non-tail
// call in the else arm. (In a proper-tail-call dialect the pattern needs
// the else call to be non-tail, which makes it rarer in the Gabriel
// suite than in the paper's Chez workload.)
var andCallPattern = &Program{
	Name:        "§2.1.2-pattern",
	Description: "call inside and-test, non-tail call in else arm",
	Source: `
(define (f y) (> y 500))
(define (g y) y)
(define (h x y)
  (if (and x (f y)) (+ y 1) (+ 1 (g (+ y 2)))))
(define (drive i acc)
  (if (zero? i) acc (drive (- i 1) (+ acc (h (even? i) i)))))
(drive 4000 0)`,
	Expect: "8010500",
}

// SaveAlgorithmAblation quantifies §2.1.2's motivation for the revised
// algorithm: the simple algorithm is sound but too lazy around
// if-in-test-position patterns (short-circuit booleans), so its saves
// sink into branches and execute more often. The synthetic §2.1.2
// pattern is appended to the given programs.
func SaveAlgorithmAblation(progs []*Program) ([]AblationRow, string, error) {
	var rows []AblationRow
	progs = append(append([]*Program(nil), progs...), andCallPattern)
	for _, p := range progs {
		revised, err := Measure(p, StrategyOptions(codegen.SaveLazy))
		if err != nil {
			return nil, "", err
		}
		simple, err := Measure(p, StrategyOptions(codegen.SaveSimple))
		if err != nil {
			return nil, "", err
		}
		rows = append(rows, AblationRow{
			Name:         p.Name,
			RevisedRefs:  revised.Counters.StackRefs(),
			SimpleRefs:   simple.Counters.StackRefs(),
			RevisedSaves: revised.Counters.WritesByKind[1], // vm.KindSave
			SimpleSaves:  simple.Counters.WritesByKind[1],
		})
	}
	var b strings.Builder
	b.WriteString("Save-algorithm ablation (§2.1.1 simple vs §2.1.3 revised)\n")
	fmt.Fprintf(&b, "%-14s %12s %12s %12s %12s %9s\n",
		"Benchmark", "revised refs", "simple refs", "rev saves", "simp saves", "penalty")
	var pen float64
	counted, worse := 0, 0
	for _, r := range rows {
		p := 0.0
		if r.RevisedRefs > 0 {
			p = float64(r.SimpleRefs)/float64(r.RevisedRefs) - 1
			pen += p
			counted++
		}
		if r.SimpleRefs > r.RevisedRefs {
			worse++
		}
		fmt.Fprintf(&b, "%-14s %12d %12d %12d %12d %8.1f%%\n",
			r.Name, r.RevisedRefs, r.SimpleRefs, r.RevisedSaves, r.SimpleSaves, p*100)
	}
	fmt.Fprintf(&b, "average simple-algorithm stack-reference penalty: %.1f%% (worse on %d of %d benchmarks)\n",
		100*pen/float64(max(counted, 1)), worse, len(rows))
	b.WriteString("(with proper tail calls the deficiency pattern needs a non-tail else-arm call,\n")
	b.WriteString(" so the Gabriel suite barely exercises it; the synthetic row isolates it)\n")
	return rows, b.String(), nil
}
