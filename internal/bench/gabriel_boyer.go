package bench

// boyer: the Gabriel logic-rewriting benchmark — a unifier/rewriter that
// normalizes a tautology and checks it. Property lists become a global
// association list keyed by symbol (get/put). The rule database is the
// core subset of the original's (the full list is ~100 rules of the same
// shape; the reduced set preserves the rewrite behaviour on the
// benchmark term).

func init() {
	register(Program{
		Name:        "boyer",
		Description: "term rewriting + tautology checking (Bob Boyer's benchmark)",
		Source:      boyerSource,
		Expect:      "#t",
	})
}

const boyerSource = `
(define props (box '()))
(define (put sym key val)
  (let ([cell (assq sym (unbox props))])
    (if cell
        (let ([entry (assq key (cdr cell))])
          (if entry
              (set-cdr! entry val)
              (set-cdr! cell (cons (cons key val) (cdr cell)))))
        (set-box! props (cons (list sym (cons key val)) (unbox props)))))
  val)
(define (get sym key)
  (let ([cell (assq sym (unbox props))])
    (if cell
        (let ([entry (assq key (cdr cell))])
          (if entry (cdr entry) #f))
        #f)))

(define unify-subst (box '()))

(define (one-way-unify term1 term2)
  (set-box! unify-subst '())
  (one-way-unify1 term1 term2))

(define (one-way-unify1 term1 term2)
  (cond
    [(not (pair? term2))
     (let ([temp (assq term2 (unbox unify-subst))])
       (cond
         [temp (equal? term1 (cdr temp))]
         [else
          (set-box! unify-subst (cons (cons term2 term1) (unbox unify-subst)))
          #t]))]
    [(not (pair? term1)) #f]
    [(eq? (car term1) (car term2))
     (one-way-unify1-lst (cdr term1) (cdr term2))]
    [else #f]))

(define (one-way-unify1-lst lst1 lst2)
  (cond
    [(null? lst1) (null? lst2)]
    [(null? lst2) #f]
    [(one-way-unify1 (car lst1) (car lst2))
     (one-way-unify1-lst (cdr lst1) (cdr lst2))]
    [else #f]))

(define (apply-subst alist term)
  (if (not (pair? term))
      (let ([temp (assq term alist)])
        (if temp (cdr temp) term))
      (cons (car term) (apply-subst-lst alist (cdr term)))))

(define (apply-subst-lst alist lst)
  (if (null? lst)
      '()
      (cons (apply-subst alist (car lst))
            (apply-subst-lst alist (cdr lst)))))

(define (rewrite term)
  (if (not (pair? term))
      term
      (rewrite-with-lemmas
        (cons (car term) (rewrite-args (cdr term)))
        (get (car term) 'lemmas))))

(define (rewrite-args lst)
  (if (null? lst)
      '()
      (cons (rewrite (car lst)) (rewrite-args (cdr lst)))))

(define (rewrite-with-lemmas term lst)
  (cond
    [(not lst) term]
    [(null? lst) term]
    [(one-way-unify term (cadr (car lst)))
     (rewrite (apply-subst (unbox unify-subst) (caddr (car lst))))]
    [else (rewrite-with-lemmas term (cdr lst))]))

(define (truep x lst)
  (or (equal? x '(t)) (member x lst)))
(define (falsep x lst)
  (or (equal? x '(f)) (member x lst)))

(define (tautologyp x true-lst false-lst)
  (cond
    [(truep x true-lst) #t]
    [(falsep x false-lst) #f]
    [(not (pair? x)) #f]
    [(eq? (car x) 'if)
     (cond
       [(truep (cadr x) true-lst)
        (tautologyp (caddr x) true-lst false-lst)]
       [(falsep (cadr x) false-lst)
        (tautologyp (cadddr x) true-lst false-lst)]
       [else
        (and (tautologyp (caddr x) (cons (cadr x) true-lst) false-lst)
             (tautologyp (cadddr x) true-lst (cons (cadr x) false-lst)))])]
    [else #f]))
(define (cadddr x) (car (cdddr x)))

(define (tautp x) (tautologyp (rewrite x) '() '()))

(define (add-lemma term)
  (put (car (cadr term)) 'lemmas
       (cons term (or (get (car (cadr term)) 'lemmas) '()))))

(define (add-lemmas lst)
  (if (null? lst) 'done (begin (add-lemma (car lst)) (add-lemmas (cdr lst)))))

(add-lemmas '(
  (equal (compile form) (reverse (codegen (optimize form) (nil))))
  (equal (eqp x y) (equal (fix x) (fix y)))
  (equal (greaterp x y) (lessp y x))
  (equal (lesseqp x y) (not (lessp y x)))
  (equal (greatereqp x y) (not (lessp x y)))
  (equal (boolean x) (or (equal x (t)) (equal x (f))))
  (equal (iff x y) (and (implies x y) (implies y x)))
  (equal (even1 x) (if (zerop x) (t) (odd (sub1 x))))
  (equal (countps- l pred) (countps-loop l pred (zero)))
  (equal (fact- i) (fact-loop i 1))
  (equal (reverse- x) (reverse-loop x (nil)))
  (equal (divides x y) (zerop (remainder y x)))
  (equal (assume-true var alist) (cons (cons var (t)) alist))
  (equal (assume-false var alist) (cons (cons var (f)) alist))
  (equal (tautology-checker x) (tautologyp (normalize x) (nil)))
  (equal (falsify x) (falsify1 (normalize x) (nil)))
  (equal (prime x) (and (not (zerop x))
                        (not (equal x (add1 (zero))))
                        (prime1 x (sub1 x))))
  (equal (and p q) (if p (if q (t) (f)) (f)))
  (equal (or p q) (if p (t) (if q (t) (f))))
  (equal (not p) (if p (f) (t)))
  (equal (implies p q) (if p (if q (t) (f)) (t)))
  (equal (plus (plus x y) z) (plus x (plus y z)))
  (equal (equal (plus a b) (zero)) (and (zerop a) (zerop b)))
  (equal (difference x x) (zero))
  (equal (equal (plus a b) (plus a c)) (equal b c))
  (equal (equal (zero) (difference x y)) (not (lessp y x)))
  (equal (equal x (difference x y)) (and (numberp x) (or (equal x (zero)) (zerop y))))
  (equal (remainder (quotient x y) y) (zero))
  (equal (remainder y 1) (zero))
  (equal (lessp (remainder x y) y) (not (zerop y)))
  (equal (remainder x x) (zero))
  (equal (lessp (quotient i j) i)
         (and (not (zerop i)) (or (zerop j) (not (equal j 1)))))
  (equal (lessp (remainder x y) x)
         (and (not (zerop y)) (not (zerop x)) (not (lessp x y))))
  (equal (divides x y) (zerop (remainder y x)))
  (equal (length (reverse x)) (length x))
  (equal (member a (intersect b c)) (and (member a b) (member a c)))
  (equal (nth (zero) i) (zero))
  (equal (exp i (plus j k)) (times (exp i j) (exp i k)))
  (equal (exp i (times j k)) (exp (exp i j) k))
  (equal (reverse-loop x y) (append (reverse x) y))
  (equal (reverse-loop x (nil)) (reverse x))
  (equal (count-list z (sort-lp x y)) (plus (count-list z x) (count-list z y)))
  (equal (equal (append a b) (append a c)) (equal b c))
  (equal (plus (remainder x y) (times y (quotient x y))) (fix x))
  (equal (power-eval (big-plus1 l i base) base) (plus (power-eval l base) i))
  (equal (power-eval (big-plus x y i base) base)
         (plus i (plus (power-eval x base) (power-eval y base))))
  (equal (remainder y 1) (zero))
  (equal (lessp (remainder x y) y) (not (zerop y)))
  (equal (remainder x x) (zero))
  (equal (times x (plus y z)) (plus (times x y) (times x z)))
  (equal (times (times x y) z) (times x (times y z)))
  (equal (equal (times x y) (zero)) (or (zerop x) (zerop y)))
  (equal (exec (append x y) pds envrn) (exec y (exec x pds envrn) envrn))
  (equal (mc-flatten x y) (append (flatten x) y))
  (equal (member x (append a b)) (or (member x a) (member x b)))
  (equal (member x (reverse y)) (member x y))
  (equal (length (reverse x)) (length x))
  (equal (member a (intersect b c)) (and (member a b) (member a c)))
  (equal (if (if a b c) d e) (if a (if b d e) (if c d e)))
  (equal (zerop x) (equal x (zero)))
  (equal (equal x x) (t))
  (equal (numberp (zero)) (t))
  ))

(define (test-term)
  (apply-subst
    '((x . (f (plus (plus a b) (plus c (zero)))))
      (y . (f (times (times a b) (plus c d))))
      (z . (f (reverse (append (append a b) (nil)))))
      (u . (equal (plus a b) (difference x y)))
      (w . (lessp (remainder a b) (member a (length b)))))
    '(implies (and (implies x y)
                   (and (implies y z)
                        (and (implies z u) (implies u w))))
              (implies x w))))

(define (run n result)
  (if (zero? n)
      result
      (run (- n 1) (tautp (test-term)))))
(run 3 #f)`
