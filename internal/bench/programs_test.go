package bench

import (
	"io"
	"testing"

	"repro/internal/compiler"
	"repro/internal/prim"
)

// TestProgramsAgainstInterpreter: every benchmark runs in the reference
// interpreter and produces its expected value.
func TestProgramsAgainstInterpreter(t *testing.T) {
	for _, p := range All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			v, err := compiler.Interpret(p.Source, false, io.Discard)
			if err != nil {
				t.Fatalf("interpret: %v", err)
			}
			if got := prim.WriteString(v); p.Expect != "" && got != p.Expect {
				t.Errorf("result = %s, want %s", got, p.Expect)
			}
		})
	}
}

// TestProgramsCompiled: every benchmark compiles and runs under the
// paper's default configuration with restore validation, matching the
// interpreter.
func TestProgramsCompiled(t *testing.T) {
	for _, p := range All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			v, counters, err := compiler.RunValidated(p.Source, compiler.DefaultOptions(), io.Discard)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if got := prim.WriteString(v); p.Expect != "" && got != p.Expect {
				t.Errorf("result = %s, want %s", got, p.Expect)
			}
			if counters.Activations == 0 {
				t.Error("no activations recorded")
			}
		})
	}
}

func TestRegistry(t *testing.T) {
	if len(All()) < 20 {
		t.Errorf("expected at least 20 benchmarks, got %d", len(All()))
	}
	large := 0
	for _, p := range All() {
		if p.Large {
			large++
		}
		if p.Description == "" {
			t.Errorf("%s: missing description", p.Name)
		}
	}
	if large != 4 {
		t.Errorf("expected 4 large-program stand-ins, got %d", large)
	}
	if _, err := ByName("tak"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("no-such"); err == nil {
		t.Error("ByName should fail for unknown names")
	}
	// Large programs come first (table order).
	all := All()
	for i := 0; i < large; i++ {
		if !all[i].Large {
			t.Errorf("All()[%d] should be a large program", i)
		}
	}
}
