package bench

import (
	"bytes"
	"strings"
	"testing"
)

func perfFixture() *PerfReport {
	return &PerfReport{
		Schema:    PerfSchema,
		Suite:     "quick",
		GoVersion: "go0.0",
		Entries: []PerfEntry{
			{Program: "a", Engine: "threaded", WallNsPerOp: 1000, SimCycles: 500, AllocsPerOp: 10},
			{Program: "b", Engine: "threaded", WallNsPerOp: 2000, SimCycles: 700, AllocsPerOp: 20},
		},
	}
}

func TestPerfRoundTrip(t *testing.T) {
	rep := perfFixture()
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPerfReport(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Entries) != 2 || got.Entries[0] != rep.Entries[0] || got.Entries[1] != rep.Entries[1] {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestPerfSchemaRejected(t *testing.T) {
	if _, err := ReadPerfReport([]byte(`{"schema":"lsr/bench-perf/v0"}`)); err == nil {
		t.Fatal("expected schema mismatch error")
	}
}

func TestComparePerfPasses(t *testing.T) {
	base, cur := perfFixture(), perfFixture()
	// 10% slower on both programs: inside the 15% gate.
	cur.Entries[0].WallNsPerOp = 1100
	cur.Entries[1].WallNsPerOp = 2200
	if err := ComparePerf(base, cur, 0.15); err != nil {
		t.Fatalf("expected pass, got %v", err)
	}
}

func TestComparePerfWallRegression(t *testing.T) {
	base, cur := perfFixture(), perfFixture()
	cur.Entries[0].WallNsPerOp = 1500
	cur.Entries[1].WallNsPerOp = 3000
	err := ComparePerf(base, cur, 0.15)
	if err == nil || !strings.Contains(err.Error(), "geomean") {
		t.Fatalf("expected wall regression failure, got %v", err)
	}
}

func TestComparePerfCycleDrift(t *testing.T) {
	base, cur := perfFixture(), perfFixture()
	cur.Entries[1].SimCycles = 701
	err := ComparePerf(base, cur, 0.15)
	if err == nil || !strings.Contains(err.Error(), "sim_cycles") {
		t.Fatalf("expected sim_cycles failure, got %v", err)
	}
}

func TestComparePerfNewProgramIgnored(t *testing.T) {
	base, cur := perfFixture(), perfFixture()
	cur.Entries = append(cur.Entries, PerfEntry{Program: "new", Engine: "threaded", WallNsPerOp: 9e6, SimCycles: 1})
	if err := ComparePerf(base, cur, 0.15); err != nil {
		t.Fatalf("expected new program to be ignored, got %v", err)
	}
}
