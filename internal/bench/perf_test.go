package bench

import (
	"bytes"
	"strings"
	"testing"
)

func perfFixture() *PerfReport {
	return &PerfReport{
		Schema:    PerfSchema,
		Suite:     "quick",
		GoVersion: "go0.0",
		Entries: []PerfEntry{
			{Program: "a", Engine: "threaded", WallNsPerOp: 1000, SimCycles: 500, AllocsPerOp: 10},
			{Program: "b", Engine: "threaded", WallNsPerOp: 2000, SimCycles: 700, AllocsPerOp: 20},
		},
	}
}

func TestPerfRoundTrip(t *testing.T) {
	rep := perfFixture()
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPerfReport(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Entries) != 2 || got.Entries[0] != rep.Entries[0] || got.Entries[1] != rep.Entries[1] {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestPerfSchemaRejected(t *testing.T) {
	if _, err := ReadPerfReport([]byte(`{"schema":"lsr/bench-perf/v0"}`)); err == nil {
		t.Fatal("expected schema mismatch error")
	}
}

func TestComparePerfPasses(t *testing.T) {
	base, cur := perfFixture(), perfFixture()
	// 10% slower on both programs: inside the 15% gate. Allocs at the
	// 10% boundary: not over it, so still inside the gate.
	cur.Entries[0].WallNsPerOp = 1100
	cur.Entries[1].WallNsPerOp = 2200
	cur.Entries[0].AllocsPerOp = 11
	if err := ComparePerf(base, cur, 0.15, 0.10); err != nil {
		t.Fatalf("expected pass, got %v", err)
	}
}

func TestComparePerfWallRegression(t *testing.T) {
	base, cur := perfFixture(), perfFixture()
	cur.Entries[0].WallNsPerOp = 1500
	cur.Entries[1].WallNsPerOp = 3000
	err := ComparePerf(base, cur, 0.15, 0.10)
	if err == nil || !strings.Contains(err.Error(), "geomean") {
		t.Fatalf("expected wall regression failure, got %v", err)
	}
}

func TestComparePerfAllocRegression(t *testing.T) {
	base, cur := perfFixture(), perfFixture()
	// One program gains 20% allocations: the per-entry gate fires even
	// though the other program is unchanged.
	cur.Entries[1].AllocsPerOp = 24
	err := ComparePerf(base, cur, 0.15, 0.10)
	if err == nil || !strings.Contains(err.Error(), "allocs_per_op") {
		t.Fatalf("expected alloc regression failure, got %v", err)
	}
	if !strings.Contains(err.Error(), "b:") {
		t.Fatalf("expected the offending program named, got %v", err)
	}
}

func TestComparePerfAllocZeroBaseline(t *testing.T) {
	base, cur := perfFixture(), perfFixture()
	// A zero-alloc baseline admits no growth at all.
	base.Entries[0].AllocsPerOp = 0
	cur.Entries[0].AllocsPerOp = 1
	err := ComparePerf(base, cur, 0.15, 0.10)
	if err == nil || !strings.Contains(err.Error(), "allocs_per_op") {
		t.Fatalf("expected zero-baseline alloc failure, got %v", err)
	}
}

func TestComparePerfAllocImprovementPasses(t *testing.T) {
	base, cur := perfFixture(), perfFixture()
	cur.Entries[0].AllocsPerOp = 2
	cur.Entries[1].AllocsPerOp = 0
	if err := ComparePerf(base, cur, 0.15, 0.10); err != nil {
		t.Fatalf("expected alloc improvement to pass, got %v", err)
	}
}

func TestComparePerfCycleDrift(t *testing.T) {
	base, cur := perfFixture(), perfFixture()
	cur.Entries[1].SimCycles = 701
	err := ComparePerf(base, cur, 0.15, 0.10)
	if err == nil || !strings.Contains(err.Error(), "sim_cycles") {
		t.Fatalf("expected sim_cycles failure, got %v", err)
	}
}

func TestComparePerfNewProgramIgnored(t *testing.T) {
	base, cur := perfFixture(), perfFixture()
	cur.Entries = append(cur.Entries, PerfEntry{Program: "new", Engine: "threaded", WallNsPerOp: 9e6, SimCycles: 1})
	if err := ComparePerf(base, cur, 0.15, 0.10); err != nil {
		t.Fatalf("expected new program to be ignored, got %v", err)
	}
}
