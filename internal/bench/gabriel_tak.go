package bench

import (
	"fmt"
	"strings"
)

// The tak family: the call-intensive kernels the paper leans on (tak is
// the Table 4/Table 5 benchmark because it "isolates the effect of
// register save/restore strategies for calls").

func init() {
	register(Program{
		Name:        "tak",
		Description: "Takeuchi function, heavily recursive integer kernel",
		Source: `
(define (tak x y z)
  (if (not (< y x))
      z
      (tak (tak (- x 1) y z)
           (tak (- y 1) z x)
           (tak (- z 1) x y))))
(tak 18 12 6)`,
		Expect: "7",
	})

	register(Program{
		Name:        "takl",
		Description: "tak with unary-list arithmetic (listn)",
		Source: `
(define (listn n)
  (if (zero? n) '() (cons n (listn (- n 1)))))
(define (shorterp x y)
  (and (pair? y) (or (null? x) (shorterp (cdr x) (cdr y)))))
(define (mas x y z)
  (if (not (shorterp y x))
      z
      (mas (mas (cdr x) y z)
           (mas (cdr y) z x)
           (mas (cdr z) x y))))
(length (mas (listn 16) (listn 10) (listn 5)))`,
		Expect: "6",
	})

	register(Program{
		Name:        "cpstak",
		Description: "tak in continuation-passing style (closure-intensive)",
		Source: `
(define (cpstak x y z)
  (define (tak x y z k)
    (if (not (< y x))
        (k z)
        (tak (- x 1) y z
             (lambda (v1)
               (tak (- y 1) z x
                    (lambda (v2)
                      (tak (- z 1) x y
                           (lambda (v3) (tak v1 v2 v3 k)))))))))
  (tak x y z (lambda (a) a)))
(cpstak 15 10 5)`,
		Expect: "10",
	})

	register(Program{
		Name:        "ctak",
		Description: "tak using call/cc for every return (continuation stress)",
		Source: `
(define (ctak x y z)
  (call/cc (lambda (k) (ctak-aux k x y z))))
(define (ctak-aux k x y z)
  (if (not (< y x))
      (k z)
      (ctak-aux
        k
        (call/cc (lambda (k1) (ctak-aux k1 (- x 1) y z)))
        (call/cc (lambda (k2) (ctak-aux k2 (- y 1) z x)))
        (call/cc (lambda (k3) (ctak-aux k3 (- z 1) x y))))))
(ctak 14 10 5)`,
		Expect: "6",
	})

	register(Program{
		Name:        "fxtak",
		Description: "tak specialized to fixnum comparisons",
		Source: `
(define (fxtak x y z)
  (if (>= y x)
      z
      (fxtak (fxtak (- x 1) y z)
             (fxtak (- y 1) z x)
             (fxtak (- z 1) x y))))
(fxtak 19 13 7)`,
		Expect: "8",
	})

	register(Program{
		Name:        "takr",
		Description: "tak split across many procedures to defeat locality",
		Source:      takrSource(),
		Expect:      "7",
	})
}

// takrSource builds the classic takr: the Takeuchi recursion distributed
// over a ring of distinct procedures (the original uses 100; we use 24,
// which preserves the many-procedure call pattern).
func takrSource() string {
	const n = 24
	var b strings.Builder
	name := func(i int) string { return fmt.Sprintf("tak%d", i%n) }
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, `
(define (%s x y z)
  (if (not (< y x))
      z
      (%s (%s (- x 1) y z)
          (%s (- y 1) z x)
          (%s (- z 1) x y))))`,
			name(i), name(4*i+1), name(4*i+2), name(4*i+3), name(4*i+4))
	}
	b.WriteString("\n(tak0 18 12 6)")
	return b.String()
}
