package bench

import "testing"

// TestVerifySweep proves the lazy-save, eager-restore and shuffle
// invariants statically for the whole evaluation suite under every
// swept configuration (the ISSUE acceptance bar: all benchmarks, all
// four save strategies, plus callee-save and the baseline).
func TestVerifySweep(t *testing.T) {
	if _, err := VerifySweep(All()); err != nil {
		t.Fatal(err)
	}
}
