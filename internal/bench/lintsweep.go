package bench

import (
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/codegen"
	"repro/internal/compiler"
	"repro/internal/dataflow"
	"repro/internal/vm"
)

// sweepConfigs are the seven allocator configurations every static
// sweep (verify, lint) exercises: the four save strategies, both
// restore policies, the callee-save mode and the stack baseline.
func sweepConfigs() []struct {
	name string
	opts compiler.Options
} {
	lazyRestores := PaperOptions()
	lazyRestores.Restores = codegen.RestoreLazy
	return []struct {
		name string
		opts compiler.Options
	}{
		{"saves=lazy restores=eager", PaperOptions()},
		{"saves=early", StrategyOptions(codegen.SaveEarly)},
		{"saves=late", StrategyOptions(codegen.SaveLate)},
		{"saves=simple", StrategyOptions(codegen.SaveSimple)},
		{"saves=lazy restores=lazy", lazyRestores},
		{"callee-save", CalleeSaveOptions(codegen.SaveLazy)},
		{"baseline (no registers)", BaselineOptions()},
	}
}

// LintSweep runs the optimality analyzer over every benchmark under all
// seven sweep configurations. It returns a summary table; the error is
// non-nil when any compilation produces gated waste — a redundant save
// or an excess shuffle move, which the paper's algorithms promise never
// to emit. Dead restores (inherent eager-restore overhead, §3) are
// tallied but do not fail the sweep.
func LintSweep(progs []*Program) (string, error) {
	var b strings.Builder
	cfgs := sweepConfigs()
	fmt.Fprintf(&b, "Optimality lint: %d programs x %d configurations\n", len(progs), len(cfgs))
	var firstErr error
	for _, c := range cfgs {
		var t analysis.Summary
		for _, p := range progs {
			compiled, err := compiler.Compile(p.Source, c.opts)
			if err != nil {
				return b.String(), fmt.Errorf("%s under %s: %w", p.Name, c.name, err)
			}
			rep := analysis.Analyze(compiled.Program)
			if err := rep.WasteError(); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("%s under %s: %w", p.Name, c.name, err)
			}
			t.RedundantSaves += rep.Totals.RedundantSaves
			t.DeadRestores += rep.Totals.DeadRestores
			t.ExcessShuffleMoves += rep.Totals.ExcessShuffleMoves
			t.ExcessShuffleTemps += rep.Totals.ExcessShuffleTemps
			t.Saves += rep.Totals.Saves
			t.Restores += rep.Totals.Restores
			t.ShuffleMoves += rep.Totals.ShuffleMoves
			t.ShuffleWindows += rep.Totals.ShuffleWindows
			t.ShuffleWindowsChecked += rep.Totals.ShuffleWindowsChecked
		}
		status := "ok"
		if t.RedundantSaves > 0 || t.ExcessShuffleMoves > 0 {
			status = "WASTE"
		}
		fmt.Fprintf(&b, "  %-28s %-5s saves=%-5d restores=%-5d shuffle-moves=%-5d (windows %d/%d) redundant-saves=%d dead-restores=%d excess-moves=%d excess-temps=%d\n",
			c.name, status, t.Saves, t.Restores, t.ShuffleMoves,
			t.ShuffleWindowsChecked, t.ShuffleWindows,
			t.RedundantSaves, t.DeadRestores, t.ExcessShuffleMoves, t.ExcessShuffleTemps)
	}
	return b.String(), firstErr
}

// WasteTable cross-validates the static analyzer against the machine:
// for each benchmark and save strategy it reports static save/restore
// sites and waste findings next to the dynamic save writes and restore
// reads, plus the ratio of the static cycle estimate (per-procedure
// estimate weighted by dynamic activation counts) to the measured
// cycles. The error is non-nil if a run fails or gated waste appears.
func WasteTable(progs []*Program) (string, error) {
	strategies := []codegen.SaveStrategy{
		codegen.SaveLazy, codegen.SaveEarly, codegen.SaveLate, codegen.SaveSimple,
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-8s %7s %7s %9s %9s %6s %6s %6s %8s\n",
		"program", "saves", "s-save", "s-rest", "d-save", "d-rest",
		"redun", "dead", "xmove", "est/dyn")
	var firstErr error
	for _, p := range progs {
		for _, s := range strategies {
			opts := StrategyOptions(s)
			m, err := Measure(p, opts)
			if err != nil {
				return b.String(), err
			}
			compiled, err := compiler.Compile(p.Source, opts)
			if err != nil {
				return b.String(), err
			}
			rep := analysis.Analyze(compiled.Program)
			if werr := rep.WasteError(); werr != nil && firstErr == nil {
				firstErr = fmt.Errorf("%s saves=%s: %w", p.Name, s, werr)
			}
			// Static cycle estimate: per-procedure straight-through
			// estimate weighted by how often each procedure actually ran.
			var est int64
			for i, pc := range rep.Procs {
				if i < len(m.Counters.PerProc) {
					est += pc.Cycles * m.Counters.PerProc[i].Activations
				}
			}
			ratio := 0.0
			if m.Counters.Cycles > 0 {
				ratio = float64(est) / float64(m.Counters.Cycles)
			}
			fmt.Fprintf(&b, "%-12s %-8s %7d %7d %9d %9d %6d %6d %6d %8.2f\n",
				p.Name, s, rep.Totals.Saves, rep.Totals.Restores,
				m.Counters.WritesByKind[vm.KindSave], m.Counters.ReadsByKind[vm.KindRestore],
				rep.Totals.RedundantSaves, rep.Totals.DeadRestores,
				rep.Totals.ExcessShuffleMoves, ratio)
		}
	}
	return b.String(), firstErr
}

// InterprocAudit runs the interprocedural save/restore analysis over
// every benchmark under the paper configuration. For each program it
// reports how many call sites resolved to a callee clobber summary
// sharper than the conservative everything-clobbered assumption, the
// static save/restore sites, and the cross-call waste — restores of
// values provably still in their registers, and saves read only by such
// restores. The waste is advisory: it measures the headroom an
// interprocedural register allocator would have over the paper's
// per-procedure one, not emitter bugs (removing the flagged
// instructions would break the allocator's own contract and trip
// -validate).
func InterprocAudit(progs []*Program) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Interprocedural waste audit (saves=lazy restores=eager)\n")
	fmt.Fprintf(&b, "%-12s %6s %7s %7s %7s %7s %8s %7s\n",
		"program", "sites", "resolv", "s-save", "s-rest", "x-dead", "x-redun", "dead%")
	var tot dataflow.InterprocStats
	for _, p := range progs {
		compiled, err := compiler.Compile(p.Source, PaperOptions())
		if err != nil {
			return b.String(), fmt.Errorf("%s: %w", p.Name, err)
		}
		t := dataflow.AnalyzeInterproc(compiled.Program).Totals
		fmt.Fprintf(&b, "%-12s %6d %7d %7d %7d %7d %8d %6.1f%%\n",
			p.Name, t.CallSites, t.ResolvedSites, t.Saves, t.Restores,
			t.CrossDeadRestores, t.CrossRedundantSaves, deadPct(t))
		tot.CallSites += t.CallSites
		tot.ResolvedSites += t.ResolvedSites
		tot.Saves += t.Saves
		tot.Restores += t.Restores
		tot.CrossDeadRestores += t.CrossDeadRestores
		tot.CrossRedundantSaves += t.CrossRedundantSaves
	}
	fmt.Fprintf(&b, "%-12s %6d %7d %7d %7d %7d %8d %6.1f%%\n",
		"TOTAL", tot.CallSites, tot.ResolvedSites, tot.Saves, tot.Restores,
		tot.CrossDeadRestores, tot.CrossRedundantSaves, deadPct(tot))
	return b.String(), nil
}

// deadPct is the share of static restores that are cross-call dead.
func deadPct(t dataflow.InterprocStats) float64 {
	if t.Restores == 0 {
		return 0
	}
	return 100 * float64(t.CrossDeadRestores) / float64(t.Restores)
}
