package bench

import (
	"strings"
	"testing"

	"repro/internal/codegen"
)

// quickSuite is a fast subset used by the table tests.
func quickSuite(t *testing.T) []*Program {
	t.Helper()
	var out []*Program
	for _, n := range []string{"tak", "cpstak", "deriv", "div-iter", "browse"} {
		p, err := ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, p)
	}
	return out
}

func TestTable1(t *testing.T) {
	s := Table1()
	if !strings.Contains(s, "tak") || !strings.Contains(s, "minieval") {
		t.Errorf("table 1 incomplete:\n%s", s)
	}
}

func TestTable2(t *testing.T) {
	rows, text, err := Table2(quickSuite(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows", len(rows))
	}
	// The paper's central observation: effective leaves exceed syntactic
	// leaves on average.
	var sl, el float64
	for _, r := range rows {
		sl += r.SynLeaf
		el += r.EffectiveLeaf()
	}
	if el <= sl {
		t.Errorf("effective leaf average (%.2f) should exceed syntactic (%.2f)\n%s", el, sl, text)
	}
}

func TestTable3(t *testing.T) {
	rows, text, err := Table3(quickSuite(t))
	if err != nil {
		t.Fatal(err)
	}
	var lazyRefs, earlyRefs, lateRefs float64
	for _, r := range rows {
		lr, er, tr := r.Reductions()
		lazyRefs += lr
		earlyRefs += er
		lateRefs += tr
		if lr <= 0 {
			t.Errorf("%s: lazy should reduce stack refs vs baseline\n%s", r.Name, text)
		}
	}
	// The paper's ordering: lazy reduces at least as much as early and late.
	if lazyRefs < earlyRefs || lazyRefs < lateRefs {
		t.Errorf("lazy (%f) should beat early (%f) and late (%f) on average:\n%s",
			lazyRefs, earlyRefs, lateRefs, text)
	}
}

func TestTable4(t *testing.T) {
	rows, text, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	// Chez (lazy caller-save) should beat the C-style configuration.
	c := rows[0].Cycles
	chez := rows[len(rows)-1].Cycles
	if chez >= c {
		t.Errorf("lazy caller-save (%d) should beat callee-save early (%d)\n%s", chez, c, text)
	}
}

func TestTable5(t *testing.T) {
	rows, text, err := Table5()
	if err != nil {
		t.Fatal(err)
	}
	early, lazy, caller := rows[0].Cycles, rows[1].Cycles, rows[2].Cycles
	if lazy >= early {
		t.Errorf("callee-save lazy (%d) should beat early (%d)\n%s", lazy, early, text)
	}
	if caller >= early {
		t.Errorf("caller-save lazy (%d) should beat callee-save early (%d)\n%s", caller, early, text)
	}
}

func TestShuffleStats(t *testing.T) {
	rows, text, err := ShuffleStats(quickSuite(t))
	if err != nil {
		t.Fatal(err)
	}
	totSites, totCyclic, totSub := 0, 0, 0
	for _, r := range rows {
		totSites += r.CallSites
		totCyclic += r.CyclicSites
		totSub += r.SitesSuboptimal
		if r.GreedyTemps < r.OptimalTemps {
			t.Errorf("%s: greedy (%d) beats 'optimal' (%d)?", r.Name, r.GreedyTemps, r.OptimalTemps)
		}
	}
	if totSites == 0 {
		t.Fatalf("no call sites:\n%s", text)
	}
	// Cycles are a small minority of call sites (paper: 7%).
	if frac := float64(totCyclic) / float64(totSites); frac > 0.25 {
		t.Errorf("cyclic fraction %.2f unexpectedly high\n%s", frac, text)
	}
	// Greedy suboptimal at only a tiny fraction of sites.
	if float64(totSub)/float64(totSites) > 0.02 {
		t.Errorf("greedy suboptimal at %d of %d sites\n%s", totSub, totSites, text)
	}
}

func TestRegisterSweep(t *testing.T) {
	p, err := ByName("tak")
	if err != nil {
		t.Fatal(err)
	}
	rows, text, err := RegisterSweep(p)
	if err != nil {
		t.Fatal(err)
	}
	// Greedy: monotone improvement (paper: increases monotonically
	// through six registers).
	for i := 1; i < len(rows); i++ {
		if rows[i].GreedyCycles > rows[i-1].GreedyCycles {
			t.Errorf("greedy cycles not monotone at %d regs:\n%s", rows[i].Regs, text)
		}
	}
	// 5→6 difference is small (paper: minimal).
	d56 := float64(rows[5].GreedyCycles-rows[6].GreedyCycles) / float64(rows[5].GreedyCycles)
	if d56 > 0.05 {
		t.Errorf("5→6 register difference unexpectedly large (%.1f%%)\n%s", d56*100, text)
	}
}

func TestRestoreStudy(t *testing.T) {
	rows, text, err := RestoreStudy(quickSuite(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Lazy executes no more restores than eager.
		if r.LazyRestores > r.EagerRestores {
			t.Errorf("%s: lazy restores (%d) exceed eager (%d)\n%s",
				r.Name, r.LazyRestores, r.EagerRestores, text)
		}
		// And run time is in the same ballpark (the paper's finding);
		// allow a generous band for the simulator.
		ratio := float64(r.LazyCycles) / float64(r.EagerCycles)
		if ratio < 0.7 || ratio > 1.3 {
			t.Errorf("%s: lazy/eager cycle ratio %.2f out of band\n%s", r.Name, ratio, text)
		}
	}
}

func TestSaveAlgorithmAblation(t *testing.T) {
	rows, text, err := SaveAlgorithmAblation(quickSuite(t))
	if err != nil {
		t.Fatal(err)
	}
	var revised, simple int64
	for _, r := range rows {
		revised += r.RevisedRefs
		simple += r.SimpleRefs
	}
	// The revised algorithm never does worse in aggregate (§2.1.2: the
	// simple algorithm is "too lazy" and pays with repeated saves).
	if revised > simple {
		t.Errorf("revised (%d refs) should not exceed simple (%d)\n%s", revised, simple, text)
	}
}

func TestFigure1(t *testing.T) {
	s, err := Figure1(500)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "S_t[(and E1 E2)]") {
		t.Errorf("figure 1 output incomplete:\n%s", s)
	}
}

func TestFigure2(t *testing.T) {
	s, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "2c") {
		t.Errorf("figure 2 output incomplete:\n%s", s)
	}
}

func TestBranchStudy(t *testing.T) {
	rows, _, err := BranchStudy(quickSuite(t), 3)
	if err != nil {
		t.Fatal(err)
	}
	gains := 0
	for _, r := range rows {
		if r.Predicted < r.Unpredicted {
			gains++
		}
	}
	if gains < len(rows)/2 {
		t.Errorf("prediction helped only %d of %d benchmarks", gains, len(rows))
	}
}

func TestCompileTimeStudy(t *testing.T) {
	s, err := CompileTimeStudy(quickSuite(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "register allocation") {
		t.Errorf("compile-time output incomplete:\n%s", s)
	}
}

func TestStrategyOptionsHelpers(t *testing.T) {
	if o := StrategyOptions(codegen.SaveEarly); o.Saves != codegen.SaveEarly {
		t.Error("StrategyOptions ignored the strategy")
	}
	if o := CalleeSaveOptions(codegen.SaveLazy); !o.CalleeSave || o.Config.CalleeSaveRegs == 0 {
		t.Error("CalleeSaveOptions misconfigured")
	}
}
