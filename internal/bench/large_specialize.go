package bench

// specialize: the "Similix" stand-in — an online partial evaluator for a
// small first-order functional language. Given a program and the static
// subset of its inputs it unfolds calls, folds constants, and residualizes
// dynamic code, then runs the residual program through a tiny evaluator
// to check it still computes the same function. Self-application-style
// symbolic processing is the workload Similix contributes in Table 1.

func init() {
	register(Program{
		Name:        "specialize",
		Description: "online partial evaluator + residual check (Similix stand-in)",
		Large:       true,
		Source:      specializeSource,
		Expect:      "(59049 59049 13 13)",
	})
}

const specializeSource = `
;; Object language:
;;   e ::= n | x | (op e e) | (if e e e) | (call f e ...)
;; Programs: ((f (params ...) body) ...)

(define (lookup-fn prog f)
  (let ([d (assq f prog)])
    (if d d (error "no function" f))))
(define (fn-params d) (cadr d))
(define (fn-body d) (caddr d))

(define (const? e) (or (number? e) (boolean? e)))

(define (apply-op op a b)
  (case op
    [(+) (+ a b)]
    [(-) (- a b)]
    [(*) (* a b)]
    [(=) (= a b)]
    [(<) (< a b)]
    [else (error "bad op" op)]))

;; --- the online specializer ------------------------------------------
;; env maps variables to either ('static . value) or ('dynamic . expr).
(define (pe prog e env depth)
  (cond
    [(const? e) e]
    [(symbol? e)
     (let ([cell (assq e env)])
       (if cell
           (if (eq? (car (cdr cell)) 'static)
               (cdr (cdr cell))
               (cdr (cdr cell)))
           (error "unbound" e)))]
    [(pair? e)
     (case (car e)
       [(if)
        (let ([c (pe prog (cadr e) env depth)])
          (if (const? c)
              (if c
                  (pe prog (caddr e) env depth)
                  (pe prog (cadddr4 e) env depth))
              (list 'if c
                    (pe prog (caddr e) env depth)
                    (pe prog (cadddr4 e) env depth))))]
       [(call)
        (let ([args (map (lambda (a) (pe prog a env depth)) (cddr e))])
          (if (< depth 50)
              ;; unfold under the depth bound; static arguments fold,
              ;; dynamic arguments are inlined into the body
              (let ([d (lookup-fn prog (cadr e))])
                (pe prog (fn-body d)
                    (bind (fn-params d) args '())
                    (+ depth 1)))
              ;; depth bound reached: residualize the call
              (cons 'call (cons (cadr e) args))))]
       [else ; (op e1 e2)
        (let ([a (pe prog (cadr e) env depth)]
              [b (pe prog (caddr e) env depth)])
          (if (and (const? a) (const? b))
              (apply-op (car e) a b)
              (simplify (list (car e) a b))))])]
    [else (error "bad term" e)]))
(define (cadddr4 e) (car (cdddr e)))

(define (all-const? l)
  (or (null? l) (and (const? (car l)) (all-const? (cdr l)))))

(define (bind params args env)
  (if (null? params)
      env
      (bind (cdr params) (cdr args)
            (cons (cons (car params)
                        (if (const? (car args))
                            (cons 'static (car args))
                            (cons 'dynamic (car args))))
                  env))))

;; algebraic simplifications on residual operator terms
(define (simplify e)
  (let ([op (car e)] [a (cadr e)] [b (caddr e)])
    (cond
      [(and (eq? op '+) (eqv? a 0)) b]
      [(and (eq? op '+) (eqv? b 0)) a]
      [(and (eq? op '*) (eqv? a 1)) b]
      [(and (eq? op '*) (eqv? b 1)) a]
      [(and (eq? op '*) (or (eqv? a 0) (eqv? b 0))) 0]
      [(and (eq? op '-) (eqv? b 0)) a]
      [else e])))

;; --- a direct evaluator for checking ----------------------------------
(define (ev prog e env)
  (cond
    [(const? e) e]
    [(symbol? e) (cdr (assq e env))]
    [(pair? e)
     (case (car e)
       [(if) (if (ev prog (cadr e) env)
                 (ev prog (caddr e) env)
                 (ev prog (cadddr4 e) env))]
       [(call)
        (let ([d (lookup-fn prog (cadr e))])
          (ev prog (fn-body d)
              (let loop ([ps (fn-params d)] [as (cddr e)] [acc '()])
                (if (null? ps)
                    acc
                    (loop (cdr ps) (cdr as)
                          (cons (cons (car ps) (ev prog (car as) env)) acc))))))]
       [else (apply-op (car e)
                       (ev prog (cadr e) env)
                       (ev prog (caddr e) env))])]
    [else (error "bad term" e)]))

;; --- the subject program: power and a polynomial ----------------------
(define prog
  '((power (b e)
      (if (= e 0) 1 (* b (call power b (- e 1)))))
    (poly (x a b c)
      (+ (* a (* x x)) (+ (* b x) c)))))

;; specialize power to e=10: residual should be a constant-free chain
(define (spec-power base-expr)
  (pe prog '(call power b e)
      (list (cons 'b (cons 'dynamic base-expr))
            (cons 'e (cons 'static 10)))
      0))

;; specialize poly to a=1,b=3,c=9 with dynamic x
(define (spec-poly)
  (pe prog '(call poly x a b c)
      (list (cons 'x (cons 'dynamic 'x))
            (cons 'a (cons 'static 1))
            (cons 'b (cons 'static 3))
            (cons 'c (cons 'static 9)))
      0))

;; wrap a residual expression as a unary function of its free variable
(define (make-residual-prog name var body)
  (list (list name (list var) body)))

(define (run k)
  (if (= k 1)
      (let* ([rp (spec-power 'b)]
             [rpoly (spec-poly)]
             [direct-power (ev prog '(call power b e) '((b . 3) (e . 10)))]
             [resid-power (ev (make-residual-prog 'rp 'b rp)
                              '(call rp 3) '())]
             [direct-poly (ev prog '(call poly x a b c)
                              '((x . 1) (a . 1) (b . 3) (c . 9)))]
             [resid-poly (ev (make-residual-prog 'rq 'x rpoly)
                             '(call rq 1) '())])
        (list direct-power resid-power direct-poly resid-poly))
      (begin (spec-power 'b) (spec-poly) (run (- k 1)))))
(run 150)`
