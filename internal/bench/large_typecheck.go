package bench

// typecheck: the "SoftScheme" stand-in — a Hindley–Milner-style type
// inferencer with unification over a small functional language,
// checking a workload of terms. Like Wright's soft typer it is
// association-heavy, recursion-heavy and allocation-heavy.

func init() {
	register(Program{
		Name:        "typecheck",
		Description: "unification-based type inference over a term workload (SoftScheme stand-in)",
		Large:       true,
		Source:      typecheckSource,
		Expect:      "(int (-> int int) (-> (list int) int) bool (-> int (list int)))",
	})
}

const typecheckSource = `
;; Types: int | bool | (-> t t) | (list t) | type variables #(tv id box)
(define tv-counter (box 0))
(define (fresh-tv)
  (set-box! tv-counter (+ (unbox tv-counter) 1))
  (vector 'tv (unbox tv-counter) (box #f)))
(define (tv? t) (and (vector? t) (eq? (vector-ref t 0) 'tv)))
(define (tv-ref t) (unbox (vector-ref t 2)))
(define (tv-set! t v) (set-box! (vector-ref t 2) v))

(define (prune t)
  (if (and (tv? t) (tv-ref t))
      (prune (tv-ref t))
      t))

(define (occurs? v t)
  (let ([t (prune t)])
    (cond
      [(tv? t) (eq? v t)]
      [(pair? t)
       (let loop ([l (cdr t)])
         (cond [(null? l) #f]
               [(occurs? v (car l)) #t]
               [else (loop (cdr l))]))]
      [else #f])))

(define (unify t1 t2)
  (let ([t1 (prune t1)] [t2 (prune t2)])
    (cond
      [(eq? t1 t2) #t]
      [(tv? t1)
       (if (occurs? t1 t2) (error "occurs check" t1) (tv-set! t1 t2))]
      [(tv? t2) (unify t2 t1)]
      [(and (symbol? t1) (symbol? t2) (eq? t1 t2)) #t]
      [(and (pair? t1) (pair? t2) (eq? (car t1) (car t2))
            (= (length t1) (length t2)))
       (let loop ([a (cdr t1)] [b (cdr t2)])
         (if (null? a)
             #t
             (begin (unify (car a) (car b)) (loop (cdr a) (cdr b)))))]
      [else (error "type mismatch" (list t1 t2))])))

;; resolve a type to a printable form
(define (resolve t)
  (let ([t (prune t)])
    (cond
      [(tv? t) (string->symbol (string-append "t" (number->string (vector-ref t 1))))]
      [(pair? t) (cons (car t) (map resolve (cdr t)))]
      [else t])))

;; Terms: numbers, booleans (quote #t), symbols, (lambda (x) e),
;; (e1 e2), (if c a b), (let ([x e]) b), (fix f e), (nil), (cons e e),
;; (car e), (cdr e), (null? e), arithmetic (+ - * = <)
(define (infer e env)
  (cond
    [(number? e) 'int]
    [(boolean? e) 'bool]
    [(symbol? e)
     (let ([cell (assq e env)])
       (if cell (cdr cell) (error "unbound variable" e)))]
    [(pair? e)
     (case (car e)
       [(lambda)
        (let* ([param (car (cadr e))]
               [tp (fresh-tv)]
               [tb (infer (caddr e) (cons (cons param tp) env))])
          (list '-> tp tb))]
       [(if)
        (let ([tc (infer (cadr e) env)]
              [ta (infer (caddr e) env)]
              [tb (infer (cadddr3 e) env)])
          (unify tc 'bool)
          (unify ta tb)
          ta)]
       [(let)
        (let* ([binding (car (cadr e))]
               [tv (infer (cadr binding) env)])
          (infer (caddr e) (cons (cons (car binding) tv) env)))]
       [(fix)
        ;; (fix f e): f bound in e with f's own type
        (let* ([f (cadr e)]
               [tf (fresh-tv)]
               [te (infer (caddr e) (cons (cons f tf) env))])
          (unify tf te)
          tf)]
       [(nil) (list 'list (fresh-tv))]
       [(cons)
        (let ([th (infer (cadr e) env)]
              [tt (infer (caddr e) env)])
          (unify tt (list 'list th))
          tt)]
       [(car)
        (let ([tl (infer (cadr e) env)] [tv (fresh-tv)])
          (unify tl (list 'list tv))
          tv)]
       [(cdr)
        (let ([tl (infer (cadr e) env)] [tv (fresh-tv)])
          (unify tl (list 'list tv))
          tl)]
       [(null?)
        (let ([tl (infer (cadr e) env)])
          (unify tl (list 'list (fresh-tv)))
          'bool)]
       [(+ - *)
        (unify (infer (cadr e) env) 'int)
        (unify (infer (caddr e) env) 'int)
        'int]
       [(= <)
        (unify (infer (cadr e) env) 'int)
        (unify (infer (caddr e) env) 'int)
        'bool]
       [else
        ;; application
        (let* ([tf (infer (car e) env)]
               [ta (infer (cadr e) env)]
               [tr (fresh-tv)])
          (unify tf (list '-> ta tr))
          tr)])]
    [else (error "bad term" e)]))
(define (cadddr3 e) (car (cdddr e)))

(define workload
  '((+ 1 (* 2 3))
    (lambda (x) (+ x 1))
    (fix len (lambda (l) (if (null? l) 0 (+ 1 (len (cdr l))))))
    (let ([double (lambda (x) (+ x x))]) (= (double 21) 42))
    (fix build (lambda (n) (if (= n 0) (nil) (cons n (build (- n 1))))))))

(define (check-all terms)
  (map (lambda (t) (infer t '())) terms))

(define (final-results)
  (let ([results (check-all workload)])
    ;; The length function's element type is polymorphic; pin it to int
    ;; so the reported type is ground.
    (unify (list-ref results 2) (list '-> (list 'list 'int) (fresh-tv)))
    (map resolve results)))

(define (run k)
  (if (= k 1)
      (final-results)
      (begin (check-all workload) (run (- k 1)))))
(run 300)`
