package bench

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/compiler"
	"repro/internal/dataflow"
)

// ArenaSweep runs the arena-lifetime escape analysis (DESIGN.md §15)
// over every benchmark under the paper configuration, then over the
// seeded-violation corpus. The sweep is a two-sided gate: the emitted
// code must analyze clean (no value derived from a per-machine arena
// escapes into Program-lifetime storage or a pre-store read), and every
// corpus entry must still be caught (so the analysis itself cannot
// silently go blind). The error is non-nil when either side fails.
func ArenaSweep(progs []*Program) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Arena-lifetime escape analysis (saves=lazy restores=eager)\n")
	fmt.Fprintf(&b, "%-12s %7s %9s %8s %7s %8s\n",
		"program", "extents", "mutconsts", "taintedg", "hazard", "findings")
	var firstErr error
	for _, p := range progs {
		compiled, err := compiler.Compile(p.Source, PaperOptions())
		if err != nil {
			return b.String(), fmt.Errorf("%s: %w", p.Name, err)
		}
		rep := dataflow.AnalyzeArena(compiled.Program, dataflow.ArenaOptions{})
		t := rep.Totals
		fmt.Fprintf(&b, "%-12s %7d %9d %8d %7v %8d\n",
			p.Name, t.Extents, t.MutableConsts, t.TaintedGlobals, t.MutationHazard, len(rep.Findings))
		if !rep.Clean() && firstErr == nil {
			firstErr = fmt.Errorf("%s: arena analysis found %d violation(s):\n%s",
				p.Name, len(rep.Findings), rep.Render())
		}
	}

	missing := dataflow.CheckArenaCorpus()
	names := make([]string, 0, len(missing))
	for name := range missing {
		names = append(names, name)
	}
	sort.Strings(names)
	caught := 0
	for _, name := range names {
		if len(missing[name]) == 0 {
			caught++
		} else if firstErr == nil {
			firstErr = fmt.Errorf("seeded violation %s not caught: missing kinds %v", name, missing[name])
		}
	}
	fmt.Fprintf(&b, "seeded-violation corpus: %d/%d caught\n", caught, len(names))
	return b.String(), firstErr
}
