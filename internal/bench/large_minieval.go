package bench

// minieval: the "Compiler" stand-in (DESIGN.md §5) — a meta-circular
// evaluator with environments, closures and a small macro layer,
// evaluating a workload of programs. Like a compiler run, it is
// dominated by dispatch over term structure, association-list lookups,
// and deep non-tail recursion.

func init() {
	register(Program{
		Name:        "minieval",
		Description: "meta-circular evaluator evaluating a program workload (Compiler stand-in)",
		Large:       true,
		Source:      minievalSource,
		Expect:      "(3628800 55 1024 8 (1 4 9 16 25))",
	})
}

const minievalSource = `
;; --- environments -------------------------------------------------
(define (env-empty) '())
(define (env-extend env names vals)
  (if (null? names)
      env
      (env-extend (cons (cons (car names) (car vals)) env)
                  (cdr names) (cdr vals))))
(define (env-lookup env name)
  (let ([cell (assq name env)])
    (if cell (cdr cell) (error "unbound" name))))

;; --- closures ------------------------------------------------------
(define (make-proc params body env) (vector 'proc params body env))
(define (proc? v) (and (vector? v) (eq? (vector-ref v 0) 'proc)))
(define (proc-params v) (vector-ref v 1))
(define (proc-body v) (vector-ref v 2))
(define (proc-env v) (vector-ref v 3))

(define (make-primop f) (vector 'primop f))
(define (primop? v) (and (vector? v) (eq? (vector-ref v 0) 'primop)))
(define (primop-fn v) (vector-ref v 1))

;; --- the evaluator -------------------------------------------------
(define (meval e env)
  (cond
    [(number? e) e]
    [(boolean? e) e]
    [(symbol? e) (env-lookup env e)]
    [(pair? e)
     (case (car e)
       [(quote) (cadr e)]
       [(if) (if (meval (cadr e) env)
                 (meval (caddr e) env)
                 (meval (cadddr2 e) env))]
       [(lambda) (make-proc (cadr e) (caddr e) env)]
       [(let)
        (let ([names (map car (cadr e))]
              [vals (map (lambda (b) (meval (cadr b) env)) (cadr e))])
          (meval (caddr e) (env-extend env names vals)))]
       [(letrec)
        ;; single-binding letrec via a mutable cell
        (let* ([name (car (car (cadr e)))]
               [cell (cons name 0)]
               [env2 (cons cell env)]
               [val (meval (cadr (car (cadr e))) env2)])
          (set-cdr! cell val)
          (meval (caddr e) env2))]
       [(begin)
        (let loop ([es (cdr e)])
          (if (null? (cdr es))
              (meval (car es) env)
              (begin (meval (car es) env) (loop (cdr es)))))]
       [else
        (mapply (meval (car e) env)
                (map (lambda (a) (meval a env)) (cdr e)))])]
    [else (error "bad expression" e)]))
(define (cadddr2 e) (car (cdddr e)))

(define (mapply f args)
  (cond
    [(proc? f)
     (meval (proc-body f)
            (env-extend (proc-env f) (proc-params f) args))]
    [(primop? f) ((primop-fn f) args)]
    [else (error "not a procedure" f)]))

;; --- the initial environment ---------------------------------------
(define (arg1 args) (car args))
(define (arg2 args) (cadr args))
(define global-env
  (env-extend (env-empty)
    '(+ - * quotient < = zero? cons car cdr null? pair? not)
    (list
      (make-primop (lambda (a) (+ (arg1 a) (arg2 a))))
      (make-primop (lambda (a) (- (arg1 a) (arg2 a))))
      (make-primop (lambda (a) (* (arg1 a) (arg2 a))))
      (make-primop (lambda (a) (quotient (arg1 a) (arg2 a))))
      (make-primop (lambda (a) (< (arg1 a) (arg2 a))))
      (make-primop (lambda (a) (= (arg1 a) (arg2 a))))
      (make-primop (lambda (a) (zero? (arg1 a))))
      (make-primop (lambda (a) (cons (arg1 a) (arg2 a))))
      (make-primop (lambda (a) (car (arg1 a))))
      (make-primop (lambda (a) (cdr (arg1 a))))
      (make-primop (lambda (a) (null? (arg1 a))))
      (make-primop (lambda (a) (pair? (arg1 a))))
      (make-primop (lambda (a) (not (arg1 a)))))))

;; --- the workload ----------------------------------------------------
(define prog-fact
  '(letrec ([fact (lambda (n) (if (zero? n) 1 (* n (fact (- n 1)))))])
     (fact 10)))

(define prog-fib
  '(letrec ([fib (lambda (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))])
     (fib 10)))

(define prog-power
  '(letrec ([power (lambda (b e) (if (zero? e) 1 (* b (power b (- e 1)))))])
     (power 2 10)))

(define prog-gcd
  '(letrec ([gcd (lambda (a b)
                   (if (zero? b) a (gcd b (- a (* b (quotient a b))))))])
     (gcd 96 40)))

(define prog-squares
  '(letrec ([maplist
             (lambda (f l)
               (if (null? l) (quote ()) (cons (f (car l)) (maplist f (cdr l)))))])
     (maplist (lambda (x) (* x x)) (quote (1 2 3 4 5)))))

(define (run-workload n)
  (if (zero? n)
      (list (meval prog-fact global-env)
            (meval prog-fib global-env)
            (meval prog-power global-env)
            (meval prog-gcd global-env)
            (meval prog-squares global-env))
      (begin
        (meval prog-fact global-env)
        (meval prog-fib global-env)
        (meval prog-power global-env)
        (meval prog-gcd global-env)
        (meval prog-squares global-env)
        (run-workload (- n 1)))))
(run-workload 15)`
