package bench

import (
	"fmt"
	"strings"

	"repro/internal/compiler"
)

// VerifySweep statically verifies every benchmark under the allocator
// configurations the evaluation exercises: all four save strategies,
// both restore policies, the callee-save mode and the stack baseline.
// It returns a summary table; the error is non-nil if any compilation
// fails translation validation (and carries the violations).
func VerifySweep(progs []*Program) (string, error) {
	cfgs := sweepConfigs()

	var b strings.Builder
	fmt.Fprintf(&b, "Translation validation: %d programs x %d configurations\n", len(progs), len(cfgs))
	for _, c := range cfgs {
		opts := c.opts
		opts.Verify = true
		instrs := 0
		for _, p := range progs {
			compiled, err := compiler.Compile(p.Source, opts)
			if err != nil {
				return b.String(), fmt.Errorf("%s under %s: %w", p.Name, c.name, err)
			}
			instrs += len(compiled.Program.Code)
		}
		fmt.Fprintf(&b, "  %-28s ok (%d instructions verified)\n", c.name, instrs)
	}
	return b.String(), nil
}
