package bench

import (
	"strings"
	"testing"
)

// TestLintSweep is the optimality acceptance bar: zero redundant saves
// and zero excess shuffle moves across the whole evaluation suite
// under every swept configuration.
func TestLintSweep(t *testing.T) {
	table, err := LintSweep(All())
	if err != nil {
		t.Fatalf("%v\n%s", err, table)
	}
	if strings.Contains(table, "WASTE") {
		t.Fatalf("sweep table reports waste without an error:\n%s", table)
	}
}
