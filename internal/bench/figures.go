package bench

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/ast"
	"repro/internal/codegen"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/passes"
	"repro/internal/prelude"
	"repro/internal/regset"
	"repro/internal/vm"
)

// Figure1 demonstrates the derived S_t/S_f equations for not, and, and
// or (the paper's Figure 1): it verifies each derived equation against
// its if-expansion over a corpus of random simplified-language
// expressions, and prints the paper's worked example.
func Figure1(trials int) (string, error) {
	const nRegs = 8
	r := regset.Universe(nRegs)
	rng := rand.New(rand.NewSource(1995))

	gen := func(depth int) core.Expr { return randomSimpleExpr(rng, depth, nRegs) }
	checked := 0
	for i := 0; i < trials; i++ {
		e1, e2 := gen(3), gen(3)
		s1, s2 := core.Revised(e1, r), core.Revised(e2, r)
		if core.NotSets(s1) != core.Revised(core.If{Test: e1, Then: core.False{}, Else: core.True{}}, r) {
			return "", fmt.Errorf("figure 1: not-equation mismatch on %s", e1)
		}
		if core.AndSets(s1, s2) != core.Revised(core.If{Test: e1, Then: e2, Else: core.False{}}, r) {
			return "", fmt.Errorf("figure 1: and-equation mismatch on (and %s %s)", e1, e2)
		}
		if core.OrSets(s1, s2) != core.Revised(core.If{Test: e1, Then: core.True{}, Else: e2}, r) {
			return "", fmt.Errorf("figure 1: or-equation mismatch on (or %s %s)", e1, e2)
		}
		checked += 3
	}

	var b strings.Builder
	b.WriteString("Figure 1: derived save-set equations (verified against if-expansions)\n")
	fmt.Fprintf(&b, "  S_t[(not E)]      = S_f[E]\n")
	fmt.Fprintf(&b, "  S_f[(not E)]      = S_t[E]\n")
	fmt.Fprintf(&b, "  S_t[(and E1 E2)]  = S_t[E1] ∪ S_t[E2]\n")
	fmt.Fprintf(&b, "  S_f[(and E1 E2)]  = (S_t[E1] ∪ S_f[E2]) ∩ S_f[E1]\n")
	fmt.Fprintf(&b, "  S_t[(or E1 E2)]   = S_t[E1] ∩ (S_f[E1] ∪ S_t[E2])\n")
	fmt.Fprintf(&b, "  S_f[(or E1 E2)]   = S_f[E1] ∪ S_f[E2]\n")
	fmt.Fprintf(&b, "%d derived-equation instances verified against expansion\n\n", checked)

	// The §2.1.2 worked example.
	live := regset.Of(1, 2)
	y := 3
	inner := core.If{Test: core.Var{Reg: 0}, Then: core.Call{LiveAfter: live.Add(y)}, Else: core.False{}}
	a := core.If{Test: inner, Then: core.Var{Reg: y}, Else: core.Call{LiveAfter: live}}
	b.WriteString("Worked example A = (if (if x call false) y call), L = {r1 r2}:\n")
	fmt.Fprintf(&b, "  simple algorithm:  S[A] = %s  (too lazy — saves nothing)\n", core.Simple(a))
	sets := core.Revised(a, regset.Universe(8))
	fmt.Fprintf(&b, "  revised algorithm: %s\n", core.FormatSets(sets))
	return b.String(), nil
}

// randomSimpleExpr builds a random paper-language expression.
func randomSimpleExpr(rng *rand.Rand, depth, nRegs int) core.Expr {
	r := regset.Universe(nRegs)
	if depth <= 0 {
		switch rng.Intn(4) {
		case 0:
			return core.Var{Reg: rng.Intn(nRegs)}
		case 1:
			return core.True{}
		case 2:
			return core.False{}
		default:
			return core.Call{LiveAfter: regset.Set(rng.Uint64()) & regset.Set(r)}
		}
	}
	switch rng.Intn(6) {
	case 0:
		return core.Var{Reg: rng.Intn(nRegs)}
	case 1:
		return core.True{}
	case 2:
		return core.False{}
	case 3:
		return core.Call{LiveAfter: regset.Set(rng.Uint64()) & regset.Set(r)}
	case 4:
		return core.Seq{E1: randomSimpleExpr(rng, depth-1, nRegs), E2: randomSimpleExpr(rng, depth-1, nRegs)}
	default:
		return core.If{
			Test: randomSimpleExpr(rng, depth-1, nRegs),
			Then: randomSimpleExpr(rng, depth-1, nRegs),
			Else: randomSimpleExpr(rng, depth-1, nRegs),
		}
	}
}

// figure2Shapes are the three §2.2 control-flow shapes as Scheme
// procedures (g is an opaque call; x is the register in question; the
// driver alternates the branch condition).
var figure2Shapes = []struct {
	name, desc, src string
}{
	{
		name: "2a",
		desc: "call, then a branch that references x on one arm only",
		src: `
(define (g) 0)
(define (shape x b) (g) (if b (+ x 1) 0))
(let loop ([i 0] [acc 0])
  (if (= i 2000) acc (loop (+ i 1) (+ acc (shape i (even? i))))))`,
	},
	{
		name: "2b",
		desc: "branch where only one arm calls, then a reference to x",
		src: `
(define (g) 0)
(define (shape x b) (if b (g) 0) (+ x 1))
(let loop ([i 0] [acc 0])
  (if (= i 2000) acc (loop (+ i 1) (+ acc (shape i (even? i))))))`,
	},
	{
		name: "2c",
		desc: "x referenced outside the save region (both arms use x, one calls)",
		src: `
(define (g) 0)
(define (shape x b) (if b (begin (g) (+ x 1)) (+ x 2)))
(let loop ([i 0] [acc 0])
  (if (= i 2000) acc (loop (+ i 1) (+ acc (shape i (even? i))))))`,
	},
}

// Figure2 reproduces the §2.2 restore-placement diagrams dynamically:
// for each control-flow shape it counts the restore loads each policy
// actually executes, exhibiting the eager policy's unnecessary restores
// (2a, 2b) and the case where even the lazy policy is forced to restore
// (2c).
func Figure2() (string, error) {
	var b strings.Builder
	b.WriteString("Figure 2: eager vs lazy restore placement (executed restore loads)\n")
	fmt.Fprintf(&b, "%-4s %-62s %8s %8s\n", "", "shape", "eager", "lazy")
	for _, sh := range figure2Shapes {
		prog := &Program{Name: "fig" + sh.name, Source: sh.src, Expect: ""}
		eager, err := Measure(prog, PaperOptions())
		if err != nil {
			return "", err
		}
		lazyOpts := PaperOptions()
		lazyOpts.Restores = codegen.RestoreLazy
		lazy, err := Measure(prog, lazyOpts)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%-4s %-62s %8d %8d\n", sh.name, sh.desc,
			eager.Counters.ReadsByKind[vm.KindRestore],
			lazy.Counters.ReadsByKind[vm.KindRestore])
	}
	b.WriteString("(eager restores early and sometimes needlessly; lazy avoids most, but 2c forces restores on exit of the save region)\n")
	return b.String(), nil
}

// CompileTimeStudy measures the fraction of total compilation spent in
// register allocation and code generation (the paper reports register
// allocation ≈ 7% of overall compile time).
func CompileTimeStudy(progs []*Program, repeats int) (string, error) {
	var front, back time.Duration
	for _, p := range progs {
		src := prelude.Source + "\n" + p.Source
		for i := 0; i < repeats; i++ {
			t0 := time.Now()
			parsed, err := ast.ParseString(src)
			if err != nil {
				return "", err
			}
			converted := passes.AssignConvert(parsed)
			irProg, err := passes.ClosureConvert(converted)
			if err != nil {
				return "", err
			}
			t1 := time.Now()
			if _, _, err := codegen.Compile(irProg, codegen.DefaultOptions()); err != nil {
				return "", err
			}
			t2 := time.Now()
			front += t1.Sub(t0)
			back += t2.Sub(t1)
		}
	}
	total := front + back
	var b strings.Builder
	b.WriteString("Compile-time profile (§4)\n")
	fmt.Fprintf(&b, "front end (read/expand/convert): %v (%.1f%%)\n",
		front, 100*float64(front)/float64(total))
	fmt.Fprintf(&b, "register allocation + codegen:   %v (%.1f%%)\n",
		back, 100*float64(back)/float64(total))
	b.WriteString("(paper: register allocation ≈ 7% of compile time; our back end includes instruction emission)\n")
	return b.String(), nil
}

// Quick compile check used by tests.
var _ = compiler.DefaultOptions
