package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/codegen"
	"repro/internal/compiler"
	"repro/internal/prim"
	"repro/internal/vm"
)

// BenchFuel is the step budget every benchmark run executes under. The
// full suite's largest programs finish in well under a billion
// instructions, so the budget never alters a measurement; it exists so
// a miscompiled benchmark that loops forever fails deterministically
// (vm.ErrFuelExhausted) instead of hanging the harness.
const BenchFuel = 10_000_000_000

// Measurement is one (program, configuration) run.
type Measurement struct {
	Program  string
	Counters *vm.Counters
	Stats    codegen.Stats
	Compile  time.Duration
	Run      time.Duration
	Result   string
}

// Measure compiles and runs one benchmark under opts, checking its
// expected result.
func Measure(p *Program, opts compiler.Options) (*Measurement, error) {
	return measure(p, opts, vm.DefaultCostModel(), vm.CountFull)
}

// MeasureFast is Measure on the machine's counters-off fast path
// (vm.CountEssential): the cost-model outputs — instructions, cycles,
// stalls and stack-reference counts — are byte-for-byte identical to
// Measure's (TestEngineEquivalence enforces this), but the diagnostic
// bookkeeping (per-kind reference breakdowns, call-graph
// classification, branch statistics) is skipped. Tables that consume
// only cycles and stack references use it.
func MeasureFast(p *Program, opts compiler.Options) (*Measurement, error) {
	return measure(p, opts, vm.DefaultCostModel(), vm.CountEssential)
}

// MeasureWithCost is Measure under an explicit machine cost model.
func MeasureWithCost(p *Program, opts compiler.Options, cost vm.CostModel) (*Measurement, error) {
	return measure(p, opts, cost, vm.CountFull)
}

func measure(p *Program, opts compiler.Options, cost vm.CostModel, mode vm.CounterMode) (*Measurement, error) {
	start := time.Now()
	c, err := compiler.Compile(p.Source, opts)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", p.Name, err)
	}
	compileTime := time.Since(start)

	m := vm.New(c.Program, io.Discard)
	m.SetCostModel(cost)
	m.Counting = mode
	m.MaxSteps = BenchFuel
	start = time.Now()
	v, err := m.Run()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", p.Name, err)
	}
	runTime := time.Since(start)
	result := prim.WriteString(v)
	if p.Expect != "" && result != p.Expect {
		return nil, fmt.Errorf("%s: result %s, want %s", p.Name, result, p.Expect)
	}
	return &Measurement{
		Program:  p.Name,
		Counters: &m.Counters,
		Stats:    c.Stats,
		Compile:  compileTime,
		Run:      runTime,
		Result:   result,
	}, nil
}

// Configurations used throughout the experiments.

// PaperOptions is the paper's main configuration: lazy saves, eager
// restores, greedy shuffling, six argument and six user registers.
func PaperOptions() compiler.Options {
	return compiler.DefaultOptions()
}

// BaselineOptions is Table 3's baseline: no argument or user registers.
func BaselineOptions() compiler.Options {
	o := compiler.DefaultOptions()
	o.Config = vm.BaselineConfig()
	return o
}

// StrategyOptions returns the paper configuration with a different save
// strategy.
func StrategyOptions(s codegen.SaveStrategy) compiler.Options {
	o := compiler.DefaultOptions()
	o.Saves = s
	return o
}

// CalleeSaveOptions returns the §2.4/Table 5 callee-save configuration.
func CalleeSaveOptions(s codegen.SaveStrategy) compiler.Options {
	o := compiler.DefaultOptions()
	o.Config = vm.Config{ArgRegs: 6, UserRegs: 6, ScratchRegs: 8, CalleeSaveRegs: 6}
	o.CalleeSave = true
	o.Saves = s
	return o
}

// RegistersOptions returns the paper configuration with c argument and l
// user registers (the §4 register sweep).
func RegistersOptions(c, l int, shuffle codegen.ShuffleMethod) compiler.Options {
	o := compiler.DefaultOptions()
	o.Config = vm.Config{ArgRegs: c, UserRegs: l, ScratchRegs: 8}
	o.Shuffle = shuffle
	return o
}
