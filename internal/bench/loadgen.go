package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// LoadSchema identifies the sustained-load BENCH_LOAD_*.json format.
// Bump the version when a field changes meaning; the comparer refuses
// to compare across schema versions.
const LoadSchema = "lsr/bench-load/v1"

// SLO is the service-level objective a load run is gated against. The
// bounds travel inside the committed baseline report, so the gate in
// CI always applies the reviewed objective, not whatever a candidate
// run claims about itself.
type SLO struct {
	// P99MsMax bounds the 99th-percentile request latency.
	P99MsMax float64 `json:"p99_ms_max"`
	// ThroughputMin bounds sustained successful requests per second
	// from below.
	ThroughputMin float64 `json:"throughput_rps_min"`
	// ErrorRateMax bounds the non-2xx fraction of all requests.
	ErrorRateMax float64 `json:"error_rate_max"`
}

// LoadReport is the schema-versioned payload written to
// BENCH_LOAD_*.json: one sustained-load run against the gate.
type LoadReport struct {
	Schema string `json:"schema"`
	// Target is the base URL the load was driven at (recorded for
	// provenance; localhost in CI).
	Target string `json:"target"`
	// Clients is the concurrent client count.
	Clients int `json:"clients"`
	// DurationSec is the measured wall time of the run.
	DurationSec float64 `json:"duration_sec"`
	// Requests counts every request issued; Errors the non-2xx or
	// transport-failed subset.
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
	// ThroughputRPS is successful requests per second of wall time.
	ThroughputRPS float64 `json:"throughput_rps"`
	// P50Ms/P95Ms/P99Ms are latency percentiles over successful
	// requests, in milliseconds.
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
	// SLO is the objective this report was gated against.
	SLO SLO `json:"slo"`
}

// LoadOptions configures a load run.
type LoadOptions struct {
	// URL is the gate (or replica) base URL.
	URL string
	// Clients is the concurrent client count (0 = 4).
	Clients int
	// Duration is how long to sustain load (0 = 5s).
	Duration time.Duration
	// SLO is embedded in the resulting report.
	SLO SLO
}

// DefaultSLO is deliberately loose: CI machines are slow, shared and
// jittery, so the gate exists to catch order-of-magnitude regressions
// (a lost cache tier, an accidental serialization point), not
// few-percent drift — that is the perf gate's job.
var DefaultSLO = SLO{P99MsMax: 2000, ThroughputMin: 5, ErrorRateMax: 0.01}

// loadCorpus is the request mix: repeated sources (cache-hit path,
// the common fleet case), a compute-bound run, and a batch. Every body
// is valid, so any error under load is a serving failure, not a 4xx
// artifact of the corpus.
var loadCorpus = []struct{ path, body string }{
	{"/v1/compile", `{"source":"(define (add1 x) (+ x 1)) (add1 41)"}`},
	{"/v1/run", `{"source":"(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))) (fib 12)"}`},
	{"/v1/compile", `{"source":"(define (len l) (if (null? l) 0 (+ 1 (len (cdr l))))) (len '(1 2 3))"}`},
	{"/v1/batch", `{"items":[{"source":"(+ 1 2)"},{"source":"(* 3 4)"},{"source":"(- 9 5)"}]}`},
	{"/v1/run", `{"source":"(define (sum n acc) (if (= n 0) acc (sum (- n 1) (+ acc n)))) (sum 1000 0)"}`},
}

// RunLoad drives the corpus at the target with Clients concurrent
// clients for Duration and returns the percentile/throughput report.
func RunLoad(opts LoadOptions) (*LoadReport, error) {
	if opts.Clients <= 0 {
		opts.Clients = 4
	}
	if opts.Duration <= 0 {
		opts.Duration = 5 * time.Second
	}
	client := &http.Client{Timeout: 30 * time.Second}
	var (
		mu    sync.Mutex
		lats  []float64
		reqs  int64
		errs  int64
		wg    sync.WaitGroup
		start = time.Now()
	)
	deadline := start.Add(opts.Duration)
	for c := 0; c < opts.Clients; c++ {
		wg.Add(1)
		go func(next int) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				w := loadCorpus[next%len(loadCorpus)]
				next++
				t0 := time.Now()
				resp, err := client.Post(opts.URL+w.path, "application/json", strings.NewReader(w.body))
				elapsed := time.Since(t0)
				ok := false
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					ok = resp.StatusCode/100 == 2
				}
				mu.Lock()
				reqs++
				if ok {
					lats = append(lats, float64(elapsed.Nanoseconds())/1e6)
				} else {
					errs++
				}
				mu.Unlock()
			}
		}(c) // offset each client's start so the mix interleaves
	}
	wg.Wait()
	wall := time.Since(start).Seconds()
	if len(lats) == 0 {
		return nil, fmt.Errorf("load: no request succeeded against %s (%d issued, %d errors)", opts.URL, reqs, errs)
	}
	sort.Float64s(lats)
	return &LoadReport{
		Schema:        LoadSchema,
		Target:        opts.URL,
		Clients:       opts.Clients,
		DurationSec:   round2(wall),
		Requests:      reqs,
		Errors:        errs,
		ThroughputRPS: round2(float64(len(lats)) / wall),
		P50Ms:         round2(percentile(lats, 0.50)),
		P95Ms:         round2(percentile(lats, 0.95)),
		P99Ms:         round2(percentile(lats, 0.99)),
		SLO:           opts.SLO,
	}, nil
}

// percentile is the nearest-rank quantile of a sorted sample.
func percentile(sorted []float64, q float64) float64 {
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func round2(v float64) float64 { return math.Round(v*100) / 100 }

// WriteJSON renders the report as indented JSON with a trailing
// newline, the exact bytes committed as BENCH_LOAD_*.json.
func (r *LoadReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadLoadReport parses a BENCH_LOAD_*.json payload and checks its
// schema.
func ReadLoadReport(data []byte) (*LoadReport, error) {
	var r LoadReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("load: parse baseline: %w", err)
	}
	if r.Schema != LoadSchema {
		return nil, fmt.Errorf("load: baseline schema %q, want %q", r.Schema, LoadSchema)
	}
	return &r, nil
}

// CheckSLO gates a report against an objective. Used directly on a
// fresh run (CI) and by CompareLoad for baseline-vs-candidate.
func CheckSLO(r *LoadReport, slo SLO) error {
	var problems []string
	if slo.P99MsMax > 0 && r.P99Ms > slo.P99MsMax {
		problems = append(problems, fmt.Sprintf("p99 %.2fms exceeds SLO %.2fms", r.P99Ms, slo.P99MsMax))
	}
	if slo.ThroughputMin > 0 && r.ThroughputRPS < slo.ThroughputMin {
		problems = append(problems, fmt.Sprintf("throughput %.2f rps below SLO %.2f rps", r.ThroughputRPS, slo.ThroughputMin))
	}
	if slo.ErrorRateMax >= 0 && r.Requests > 0 {
		rate := float64(r.Errors) / float64(r.Requests)
		if rate > slo.ErrorRateMax {
			problems = append(problems, fmt.Sprintf("error rate %.4f exceeds SLO %.4f (%d/%d)", rate, slo.ErrorRateMax, r.Errors, r.Requests))
		}
	}
	if len(problems) > 0 {
		return fmt.Errorf("load SLO gate failed:\n  %s", strings.Join(problems, "\n  "))
	}
	return nil
}

// CompareLoad gates a candidate run against the committed baseline:
// the candidate must meet the baseline's SLO bounds. The bounds come
// from the baseline (the reviewed artifact), so a candidate cannot
// loosen its own gate.
func CompareLoad(base, cur *LoadReport) error {
	if base.Schema != cur.Schema {
		return fmt.Errorf("load: schema mismatch: baseline %q, candidate %q", base.Schema, cur.Schema)
	}
	return CheckSLO(cur, base.SLO)
}
