package bench

// browse: the Gabriel AI-pattern-matcher benchmark — builds a database
// of units with property lists and repeatedly matches wildcard patterns
// against it. Randomness comes from the classic seeded LCG so runs are
// deterministic; property lists live in a boxed alist as in boyer.

func init() {
	register(Program{
		Name:        "browse",
		Description: "pattern-matching database browse (property lists)",
		Source:      browseSource,
		Expect:      "done",
	})
}

const browseSource = `
(define props (box '()))
(define (put sym key val)
  (let ([cell (assq sym (unbox props))])
    (if cell
        (let ([entry (assq key (cdr cell))])
          (if entry
              (set-cdr! entry val)
              (set-cdr! cell (cons (cons key val) (cdr cell)))))
        (set-box! props (cons (list sym (cons key val)) (unbox props)))))
  val)
(define (get sym key)
  (let ([cell (assq sym (unbox props))])
    (if cell
        (let ([entry (assq key (cdr cell))])
          (if entry (cdr entry) #f))
        #f)))

(define rand-seed (box 21))
(define (random n)
  (set-box! rand-seed (modulo (+ (* (unbox rand-seed) 17) 3) 251))
  (modulo (unbox rand-seed) n))

;; unit names sym0..sym99
(define (make-name i) (string->symbol (string-append "sym" (number->string i))))

(define (init-database n ipats)
  (let loop ([i 0] [acc '()])
    (if (= i n)
        acc
        (let ([name (make-name i)])
          (put name 'pattern
               (list (list-ref ipats (modulo i (length ipats)))
                     (list-ref ipats (modulo (+ i 1) (length ipats)))
                     (list-ref ipats (modulo (random 4) (length ipats)))))
          (loop (+ i 1) (cons name acc))))))

(define (var? s)
  (and (symbol? s)
       (char=? (string-ref (symbol->string s) 0) #\?)))

(define (match pat dat alist)
  (cond
    [(null? pat) (null? dat)]
    [(null? dat) #f]
    [(or (eq? (car pat) '?) (eq? (car pat) (car dat)))
     (match (cdr pat) (cdr dat) alist)]
    [(eq? (car pat) '*)
     (or (match (cdr pat) dat alist)
         (match (cdr pat) (cdr dat) alist)
         (match pat (cdr dat) alist))]
    [(pair? (car pat))
     (and (pair? (car dat))
          (match (car pat) (car dat) alist)
          (match (cdr pat) (cdr dat) alist))]
    [(var? (car pat))
     (let ([v (assq (car pat) alist)])
       (if v
           (and (equal? (cdr v) (car dat))
                (match (cdr pat) (cdr dat) alist))
           (match (cdr pat) (cdr dat)
                  (cons (cons (car pat) (car dat)) alist))))]
    [else #f]))

(define (browse-pattern units pats)
  (for-each
    (lambda (unit)
      (for-each
        (lambda (pat)
          (for-each
            (lambda (datum) (match pat datum '()))
            (get unit 'pattern)))
        pats))
    units))

(define ipats
  '((a b c d e f g)
    (x (y z) (w u) q)
    (m n o p q r s t)
    (k (l (m (n o))) p)
    (u v w x y z)))

(define query-pats
  '((?x * e f *)
    (* (y ?) *)
    (a ? c ? e ?)
    (k (l (m (n ?))) ?)
    (* q)))

(define units (init-database 60 ipats))
(define (run n)
  (if (zero? n)
      'done
      (begin (browse-pattern units query-pats) (run (- n 1)))))
(run 30)`
