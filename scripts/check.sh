#!/bin/sh
# Pre-PR gate: build, vet, test, then sweep the translation validator
# and the optimality analyzer over the benchmark suite and run the
# examples (every compilation in the examples runs with Options.Verify
# on). The lint sweep fails on any redundant save or excess shuffle
# move under any of the seven allocator configurations. Usage:
#
#   scripts/check.sh          # full test budget
#   scripts/check.sh -short   # short fuzzer budget
set -eu
cd "$(dirname "$0")/.."

short=""
if [ "${1:-}" = "-short" ]; then
    short="-short"
fi

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "files not gofmt-formatted:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== package docs =="
undoc=$(go list -f '{{if not .Doc}}{{.ImportPath}}{{end}}' ./...)
if [ -n "$undoc" ]; then
    echo "packages missing a package doc comment:" >&2
    echo "$undoc" >&2
    exit 1
fi

echo "== source lint: alloc baseline, Program immutability, engine parity =="
# lsrvet's alloc analyzer diffs `go build -gcflags=-m` output against
# ALLOC_BASELINE.json, which records the toolchain it was measured
# with; it fails fast with instructions if this machine's go MAJOR.MINOR
# differs (regenerate with `go run ./cmd/lsrvet -write`).
go run ./cmd/lsrvet

echo "== go test =="
go test $short ./...

echo "== go test -race =="
go test -race -short ./...

echo "== verifier sweep: benchmark suite, every configuration =="
go run ./cmd/lsrbench -verify

echo "== optimality lint sweep: benchmark suite, every configuration =="
go run ./cmd/lsrbench -lint

echo "== arena-lifetime escape analysis: benchmarks clean, seeded corpus caught =="
go run ./cmd/lsrbench -arena > /dev/null

echo "== verifier sweep: examples =="
for d in examples/*/; do
    echo "-- $d"
    go run "./$d" > /dev/null
done

echo "== fleet sustained-load gate: 2 replicas + lsrgate, short mode =="
sh scripts/loadgen.sh -short

echo "check.sh: all gates passed"
