#!/bin/sh
# Concurrent smoke test for the lsrd service: start a daemon, fire a
# burst of parallel compile/run/verify/lint requests (with repeated
# sources so the content-addressed cache and singleflight paths are
# exercised), then assert from /metrics that the cache actually hit and
# nothing was shed. Usage:
#
#   scripts/loadgen.sh           # default burst (8 clients x 6 requests)
#   CLIENTS=32 ROUNDS=10 scripts/loadgen.sh
set -eu
cd "$(dirname "$0")/.."

ADDR="${ADDR:-127.0.0.1:8377}"
CLIENTS="${CLIENTS:-8}"
ROUNDS="${ROUNDS:-6}"
BASE="http://$ADDR"

echo "== build lsrd =="
go build -o /tmp/lsrd ./cmd/lsrd

/tmp/lsrd -addr "$ADDR" &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

echo "== wait for $BASE/healthz =="
i=0
until curl -fsS "$BASE/healthz" > /dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "loadgen.sh: daemon never became healthy" >&2
        exit 1
    fi
    sleep 0.1
done

post() { # post ENDPOINT BODY — fail on non-2xx
    curl -fsS -X POST "$BASE/v1/$1" -d "$2" > /dev/null
}

echo "== burst: $CLIENTS clients x $ROUNDS rounds, mixed endpoints =="
CLIENT_PIDS=""
c=0
while [ "$c" -lt "$CLIENTS" ]; do
    (
        r=0
        while [ "$r" -lt "$ROUNDS" ]; do
            # Identical sources across clients: later requests must be
            # cache hits or singleflight joins, never fresh compiles.
            post compile '{"source": "(define (f x) (+ x 1)) (f 41)"}'
            post run '{"source": "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))) (fib 12)"}'
            post verify '{"source": "(define (g x y) (cons y x)) (g 1 2)", "options": {"saves": "lazy"}}'
            post lint '{"source": "(define (h x) (* x x)) (h 9)", "options": {"shuffle": "greedy"}}'
            r=$((r + 1))
        done
    ) &
    CLIENT_PIDS="$CLIENT_PIDS $!"
    c=$((c + 1))
done
for p in $CLIENT_PIDS; do
    wait "$p"
done

# A run that must exhaust its fuel deterministically.
code=$(curl -sS -o /dev/null -w '%{http_code}' -X POST "$BASE/v1/run" \
    -d '{"source": "(define (spin) (spin)) (spin)", "max_steps": 100000}')
if [ "$code" != "422" ]; then
    echo "loadgen.sh: fuel-exhausted run returned HTTP $code, want 422" >&2
    exit 1
fi

echo "== scrape $BASE/metrics =="
metrics=$(curl -fsS "$BASE/metrics")
hits=$(printf '%s\n' "$metrics" | awk '/^lsrd_cache_hits_total /{print $2}')
shed=$(printf '%s\n' "$metrics" | awk '/^lsrd_shed_total /{print $2}')
fuel=$(printf '%s\n' "$metrics" | awk '/^lsrd_fuel_exhausted_total /{print $2}')
echo "cache hits: ${hits:-0}, shed: ${shed:-0}, fuel exhausted: ${fuel:-0}"
if [ "${hits:-0}" -eq 0 ]; then
    echo "loadgen.sh: expected cache hits under repeated sources" >&2
    exit 1
fi
if [ "${fuel:-0}" -eq 0 ]; then
    echo "loadgen.sh: fuel-exhausted counter did not move" >&2
    exit 1
fi

kill "$PID"
wait "$PID" 2>/dev/null || true
trap - EXIT
echo "loadgen.sh: all checks passed"
