#!/bin/sh
# Sustained-load harness for the fleet tier: stand up two lsrd replicas
# sharing one on-disk compilation store, front them with lsrgate, prove
# the replicas share compilations through the store, then drive the
# gate with lsrbench's load generator and gate the percentile/
# throughput report against the committed BENCH_LOAD_0.json SLO.
# Finishes by SIGTERM-draining one replica and confirming the gate
# routes around it. Usage:
#
#   scripts/loadgen.sh           # full run (8 clients x 10s)
#   scripts/loadgen.sh -short    # CI mode (2 clients x 3s)
#   CLIENTS=32 DURATION=30s scripts/loadgen.sh
set -eu
cd "$(dirname "$0")/.."

CLIENTS="${CLIENTS:-8}"
DURATION="${DURATION:-10s}"
if [ "${1:-}" = "-short" ]; then
    CLIENTS=2
    DURATION=3s
fi

ADDR1="${ADDR1:-127.0.0.1:8378}"
ADDR2="${ADDR2:-127.0.0.1:8379}"
GADDR="${GADDR:-127.0.0.1:8380}"
BASE1="http://$ADDR1"
BASE2="http://$ADDR2"
GATE="http://$GADDR"
STOREDIR=$(mktemp -d)
LOADJSON=$(mktemp)

echo "== build lsrd, lsrgate, lsrbench =="
go build -o /tmp/lsrd ./cmd/lsrd
go build -o /tmp/lsrgate ./cmd/lsrgate
go build -o /tmp/lsrbench ./cmd/lsrbench

/tmp/lsrd -addr "$ADDR1" -store "$STOREDIR" &
PID1=$!
/tmp/lsrd -addr "$ADDR2" -store "$STOREDIR" &
PID2=$!
/tmp/lsrgate -addr "$GADDR" -backends "$BASE1,$BASE2" -health 500ms &
GPID=$!
cleanup() {
    kill "$PID1" "$PID2" "$GPID" 2>/dev/null || true
    rm -rf "$STOREDIR" "$LOADJSON"
}
trap cleanup EXIT

wait_healthy() { # wait_healthy URL
    i=0
    until curl -fsS "$1/healthz" > /dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "loadgen.sh: $1 never became healthy" >&2
            exit 1
        fi
        sleep 0.1
    done
}
echo "== wait for replicas and gate =="
wait_healthy "$BASE1"
wait_healthy "$BASE2"
wait_healthy "$GATE"

echo "== store sharing: replica 2 must serve replica 1's compilation =="
SRC='{"source": "(define (shared x) (+ x 100)) (shared 1)"}'
first=$(curl -fsS -X POST "$BASE1/v1/compile" -d "$SRC")
case "$first" in
*'"cached": false'*) ;;
*)
    echo "loadgen.sh: replica 1's first compile claims cached: $first" >&2
    exit 1
    ;;
esac
second=$(curl -fsS -X POST "$BASE2/v1/compile" -d "$SRC")
case "$second" in
*'"cached": true'*) ;;
*)
    echo "loadgen.sh: replica 2 recompiled instead of reading the store: $second" >&2
    exit 1
    ;;
esac
storehits=$(curl -fsS "$BASE2/metrics" | awk '/^lsrd_store_hits_total /{print $2}')
if [ "${storehits:-0}" -eq 0 ]; then
    echo "loadgen.sh: replica 2 reports no store hits" >&2
    exit 1
fi
echo "replica 2 served from the shared store (store hits: $storehits)"

echo "== sustained load through the gate: $CLIENTS clients x $DURATION =="
/tmp/lsrbench -loadurl "$GATE" -loadclients "$CLIENTS" -loadduration "$DURATION" \
    -loadjson "$LOADJSON" -loadcompare BENCH_LOAD_0.json
cat "$LOADJSON"

echo "== gate metrics: per-backend series must exist for both replicas =="
gmetrics=$(curl -fsS "$GATE/metrics")
for b in "$BASE1" "$BASE2"; do
    if ! printf '%s\n' "$gmetrics" | grep -q "lsrgate_requests_total{backend=\"$b\""; then
        echo "loadgen.sh: gate metrics missing request series for $b" >&2
        exit 1
    fi
    if ! printf '%s\n' "$gmetrics" | grep -q "lsrgate_request_seconds_count{backend=\"$b\""; then
        echo "loadgen.sh: gate metrics missing latency series for $b" >&2
        exit 1
    fi
done
if ! printf '%s\n' "$gmetrics" | grep -q '^lsrgate_rebalance_total '; then
    echo "loadgen.sh: gate metrics missing rebalance counter" >&2
    exit 1
fi

# A run that must exhaust its fuel deterministically, through the gate.
code=$(curl -sS -o /dev/null -w '%{http_code}' -X POST "$GATE/v1/run" \
    -d '{"source": "(define (spin) (spin)) (spin)", "max_steps": 100000}')
if [ "$code" != "422" ]; then
    echo "loadgen.sh: fuel-exhausted run returned HTTP $code, want 422" >&2
    exit 1
fi

echo "== drain: SIGTERM replica 1, gate must route around it =="
kill -TERM "$PID1"
if ! wait "$PID1"; then
    echo "loadgen.sh: replica 1 did not drain cleanly" >&2
    exit 1
fi
if [ ! -f "$STOREDIR/index.json" ]; then
    echo "loadgen.sh: drained replica did not flush the store index" >&2
    exit 1
fi
sleep 1 # let a health-probe round notice
drained=$(curl -fsS -X POST "$GATE/v1/compile" -d "$SRC")
case "$drained" in
*'"cached": true'*) ;;
*)
    echo "loadgen.sh: post-drain request through the gate failed: $drained" >&2
    exit 1
    ;;
esac

kill "$PID2" "$GPID"
wait "$PID2" 2>/dev/null || true
wait "$GPID" 2>/dev/null || true
trap - EXIT
rm -rf "$STOREDIR" "$LOADJSON"
echo "loadgen.sh: all checks passed"
