// Command lsrc is the compiler driver: it compiles and runs mini-Scheme
// programs under any allocator configuration, optionally dumping the
// generated code and the machine's measurements.
//
// Usage:
//
//	lsrc [flags] file.scm
//	lsrc [flags] -e '(+ 1 2)'
//	echo '(display "hi")' | lsrc [flags] -
//
// Flags select the save strategy (-saves lazy|early|late), restore
// policy (-restores eager|lazy), shuffler (-shuffle greedy|optimal|naive),
// register counts (-argregs N -userregs N), the callee-save mode
// (-calleesave N), and diagnostics (-dump, -stats, -validate, -verify,
// -lint, -json, -interp, -bench NAME).
//
// -verify proves the emitted code sound (translation validation);
// -lint reports allocation waste the sound code still carries
// (redundant saves, dead restores, suboptimal shuffles) plus a static
// cycle estimate, and exits nonzero on waste the paper's algorithms
// promise never to emit. -interproc runs the interprocedural
// save/restore audit: with resolved callees and clobber summaries it
// flags cross-call dead restores and redundant saves the per-procedure
// lint cannot see; the findings are advisory (allocator headroom, not
// bugs) and never gate. Human-readable -lint output includes the
// interprocedural section; -lint -json stays the plain lint envelope
// (byte-compatible with lsrd's /v1/lint), while -interproc -json emits
// a separate "interproc" findings envelope. -json renders any pass's
// findings as structured JSON on stdout. -maxsteps N bounds execution
// with a fuel budget (0 = unlimited) so runaway programs terminate
// deterministically.
//
// Exit codes follow the service error taxonomy (shared with lsrd, so
// scripts and the daemon report failures identically):
//
//	0  success
//	1  internal error
//	2  usage / bad request
//	3  parse error
//	4  compile error (including translation-validation failure)
//	5  runtime error
//	6  fuel exhausted (-maxsteps)
//	7  lint waste gate (-lint found waste the paper forbids)
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/service"
	"repro/lsr"
)

func main() {
	var (
		expr      = flag.String("e", "", "evaluate this expression instead of a file")
		benchName = flag.String("bench", "", "run the named benchmark from the evaluation suite")
		saves     = flag.String("saves", "lazy", "save strategy: lazy, early or late")
		restores  = flag.String("restores", "eager", "restore policy: eager or lazy")
		shuffle   = flag.String("shuffle", "greedy", "argument shuffler: greedy, optimal or naive")
		argRegs   = flag.Int("argregs", 6, "argument registers (c)")
		userRegs  = flag.Int("userregs", 6, "user-variable registers (l)")
		calleeSv  = flag.Int("calleesave", 0, "enable callee-save mode with N callee-save registers")
		predict   = flag.Bool("predict", false, "enable static branch prediction")
		noPrelude = flag.Bool("no-prelude", false, "omit the Scheme runtime library")
		verifyPP  = flag.Bool("verify", false, "statically verify the emitted code (translation validation)")
		lintPP    = flag.Bool("lint", false, "run the optimality analyzer and report allocation waste (skips execution)")
		interPP   = flag.Bool("interproc", false, "run the interprocedural save/restore audit (skips execution; advisory, never gates)")
		jsonOut   = flag.Bool("json", false, "emit -verify/-lint findings as JSON")
		dump      = flag.Bool("dump", false, "print the compiled code")
		stats     = flag.Bool("stats", false, "print machine counters after the run")
		validate  = flag.Bool("validate", false, "poison registers at call boundaries (restore validation)")
		interp    = flag.Bool("interp", false, "run the reference interpreter instead of compiling")
		maxSteps  = flag.Int64("maxsteps", 0, "execution fuel: abort after N steps (0 = unlimited)")
		quiet     = flag.Bool("q", false, "suppress the result value")
	)
	flag.Parse()

	src, err := readSource(*expr, *benchName, flag.Args())
	if err != nil {
		failKind(service.KindBadRequest, err)
	}

	if *interp {
		v, err := lsr.Interpret(src, os.Stdout)
		if err != nil {
			fail(service.StageRun, err)
		}
		if !*quiet {
			fmt.Println(v)
		}
		return
	}

	opts, err := buildOptions(*saves, *restores, *shuffle, *argRegs, *userRegs, *calleeSv, *predict, *noPrelude)
	if err != nil {
		failKind(service.KindBadRequest, err)
	}
	opts.Verify = *verifyPP
	opts.Lint = *lintPP
	prog, err := lsr.Compile(src, opts)
	if err != nil {
		var verr *lsr.VerifyError
		if errors.As(err, &verr) {
			failVerify(verr, *jsonOut)
		}
		fail(service.StageCompile, err)
	}
	if *dump {
		fmt.Print(prog.Disassemble())
	}
	if *lintPP || *interPP {
		// The interprocedural section rides along with human -lint
		// output; under -json the lint envelope stays byte-compatible
		// with lsrd's /v1/lint, so the interproc envelope only appears
		// when -interproc is given explicitly.
		var irep *lsr.InterprocReport
		if *interPP || (*lintPP && !*jsonOut) {
			irep = prog.AnalyzeInterproc()
		}
		if *lintPP {
			printLint(prog.Lint, *jsonOut)
		}
		if irep != nil {
			reportInterproc(irep, *jsonOut && *interPP)
		}
		if *lintPP {
			exitOnWaste(prog.Lint)
		}
		return
	}
	res, err := prog.RunWithOptions(os.Stdout, lsr.RunOptions{
		Validate: *validate,
		MaxSteps: *maxSteps,
	})
	if err != nil {
		fail(service.StageRun, err)
	}
	if !*quiet {
		fmt.Println(res.Value)
	}
	if *stats {
		fmt.Fprint(os.Stderr, res.Counters.String())
	}
}

func readSource(expr, benchName string, args []string) (string, error) {
	switch {
	case expr != "":
		return expr, nil
	case benchName != "":
		b, err := lsr.BenchmarkByName(benchName)
		if err != nil {
			return "", err
		}
		return b.Source, nil
	case len(args) == 1 && args[0] == "-":
		data, err := io.ReadAll(os.Stdin)
		return string(data), err
	case len(args) == 1:
		data, err := os.ReadFile(args[0])
		return string(data), err
	default:
		return "", fmt.Errorf("usage: lsrc [flags] file.scm | lsrc -e EXPR | lsrc -bench NAME (see -h)")
	}
}

func buildOptions(saves, restores, shuffle string, argRegs, userRegs, calleeSave int, predict, noPrelude bool) (lsr.Options, error) {
	opts := lsr.DefaultOptions()
	var err error
	if opts.Saves, err = lsr.ParseSaveStrategy(saves); err != nil {
		return opts, err
	}
	if opts.Restores, err = lsr.ParseRestorePolicy(restores); err != nil {
		return opts, err
	}
	if opts.Shuffle, err = lsr.ParseShuffleMethod(shuffle); err != nil {
		return opts, err
	}
	opts.Config.ArgRegs = argRegs
	opts.Config.UserRegs = userRegs
	if calleeSave > 0 {
		opts.Config.CalleeSaveRegs = calleeSave
		opts.CalleeSave = true
	}
	opts.PredictBranches = predict
	opts.NoPrelude = noPrelude
	return opts, nil
}

// fail reports err and exits with the taxonomy code for its classified
// kind (parse 3, compile 4, runtime 5, fuel 6, ...), so scripts can
// distinguish failure classes the same way lsrd's HTTP statuses do.
func fail(stage service.Stage, err error) {
	failKind(service.Classify(stage, err), err)
}

func failKind(kind service.Kind, err error) {
	fmt.Fprintln(os.Stderr, "lsrc:", err)
	os.Exit(kind.ExitCode())
}

// failVerify prints each translation-validation violation on its own
// line — the invariant that broke, the offending pc and instruction,
// and a static path witnessing the failure — then exits nonzero. With
// json set the violations go to stdout in the structured finding
// format instead.
func failVerify(verr *lsr.VerifyError, json bool) {
	if json {
		r := lsr.StructuredReport{Tool: "verify", Findings: lsr.VerifyFindings(verr)}
		if err := lsr.WriteFindings(os.Stdout, r); err != nil {
			failKind(service.KindInternal, err)
		}
		os.Exit(service.KindVerify.ExitCode())
	}
	fmt.Fprintf(os.Stderr, "lsrc: translation validation failed: %d violation(s)\n", len(verr.Violations))
	for _, v := range verr.Violations {
		fmt.Fprintf(os.Stderr, "  %s\n", v)
	}
	os.Exit(service.KindVerify.ExitCode())
}

// printLint renders the optimality analyzer's report — human-readable
// or as structured JSON.
func printLint(rep *lsr.LintReport, json bool) {
	if json {
		r := lsr.StructuredReport{Tool: "lint", Findings: rep.Structured(), Summary: rep.Totals}
		if err := lsr.WriteFindings(os.Stdout, r); err != nil {
			failKind(service.KindInternal, err)
		}
		return
	}
	fmt.Print(rep.Render())
}

// exitOnWaste exits nonzero when the code carries waste the paper's
// algorithms promise never to emit (a redundant save or an excess
// shuffle move; dead restores are inherent eager-restore overhead and
// only informational).
func exitOnWaste(rep *lsr.LintReport) {
	if err := rep.WasteError(); err != nil {
		fmt.Fprintln(os.Stderr, "lsrc:", err)
		os.Exit(service.KindWaste.ExitCode())
	}
}

// reportInterproc renders the interprocedural audit: a human-readable
// section, or (with -interproc -json) its own findings envelope. The
// findings are advisory and never affect the exit code.
func reportInterproc(rep *lsr.InterprocReport, json bool) {
	if json {
		fs := rep.Findings
		if fs == nil {
			fs = []lsr.StructuredFinding{}
		}
		r := lsr.StructuredReport{Tool: "interproc", Findings: fs, Summary: rep.Totals}
		if err := lsr.WriteFindings(os.Stdout, r); err != nil {
			failKind(service.KindInternal, err)
		}
		return
	}
	fmt.Print(rep.Render())
}
