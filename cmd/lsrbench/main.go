// Command lsrbench regenerates the paper's evaluation: every table and
// figure of "Register Allocation Using Lazy Saves, Eager Restores, and
// Greedy Shuffling" (PLDI'95), measured on the simulator.
//
// Usage:
//
//	lsrbench -all                # everything (several minutes)
//	lsrbench -table 3            # one table (1..5)
//	lsrbench -figure 2           # one figure (1, 2)
//	lsrbench -shuffle            # §3.1 shuffle statistics
//	lsrbench -sweep tak          # §4 register-count sweep
//	lsrbench -restores           # §2.2 eager-vs-lazy restore study
//	lsrbench -branch             # §6 branch prediction study
//	lsrbench -compiletime        # §4 compile-time profile
//	lsrbench -verify             # static translation validation sweep
//	lsrbench -lint               # static optimality (waste) sweep
//	lsrbench -waste              # static-vs-dynamic waste cross-validation
//	                             # plus the interprocedural waste audit
//	lsrbench -arena              # arena-lifetime escape analysis sweep
//	                             # (gates: benchmarks clean, corpus caught)
//	lsrbench -suite quick        # restrict tables to a fast subset
//
// Performance gate (see DESIGN.md §12):
//
//	lsrbench -suite quick -perfjson BENCH_0.json     # write a baseline
//	lsrbench -suite quick -perfcompare BENCH_0.json  # gate against it
//
// Sustained-load SLO gate against a running lsrgate/lsrd (see
// DESIGN.md §16; scripts/loadgen.sh stands the fleet up):
//
//	lsrbench -loadurl http://localhost:8376 -loadjson BENCH_LOAD_0.json
//	lsrbench -loadurl http://localhost:8376 -loadcompare BENCH_LOAD_0.json
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		table       = flag.Int("table", 0, "regenerate table N (1..5)")
		figure      = flag.Int("figure", 0, "regenerate figure N (1..2)")
		shuffle     = flag.Bool("shuffle", false, "§3.1 shuffle statistics")
		sweep       = flag.String("sweep", "", "§4 register sweep on the named benchmark")
		restores    = flag.Bool("restores", false, "§2.2 restore policy study")
		branch      = flag.Bool("branch", false, "§6 branch prediction study")
		compileTime = flag.Bool("compiletime", false, "§4 compile-time profile")
		ablation    = flag.Bool("ablation", false, "§2.1 simple-vs-revised save-algorithm ablation")
		verifySweep = flag.Bool("verify", false, "statically verify every benchmark under every swept configuration")
		lintSweep   = flag.Bool("lint", false, "run the optimality analyzer over every benchmark under every swept configuration")
		wasteTable  = flag.Bool("waste", false, "cross-validate static waste counts against the machine's dynamic counters")
		arenaSweep  = flag.Bool("arena", false, "run the arena-lifetime escape analysis over every benchmark and the seeded-violation corpus")
		all         = flag.Bool("all", false, "run everything")
		suite       = flag.String("suite", "full", "benchmark subset: full or quick")

		perfJSON       = flag.String("perfjson", "", "measure wall/cycle/alloc per program and write a BENCH_*.json report to this file")
		perfCompare    = flag.String("perfcompare", "", "measure and gate against the committed BENCH_*.json baseline at this path")
		perfThreshold  = flag.Float64("perfthreshold", 0.15, "allowed wall-time geomean regression for -perfcompare")
		allocThreshold = flag.Float64("allocthreshold", 0.10, "allowed per-program allocs_per_op growth for -perfcompare")

		loadURL      = flag.String("loadurl", "", "drive sustained load at this lsrgate/lsrd base URL and report p50/p95/p99 + throughput")
		loadClients  = flag.Int("loadclients", 4, "concurrent load clients for -loadurl")
		loadDuration = flag.Duration("loadduration", 5*time.Second, "sustained-load duration for -loadurl")
		loadJSON     = flag.String("loadjson", "", "write the load report as BENCH_LOAD_*.json to this file")
		loadCompare  = flag.String("loadcompare", "", "gate the load run against the committed BENCH_LOAD_*.json baseline at this path")
	)
	flag.Parse()

	progs, err := suitePrograms(*suite)
	if err != nil {
		fail(err)
	}

	ran := false
	section := func(run func() error) {
		ran = true
		if err := run(); err != nil {
			fail(err)
		}
		fmt.Println()
	}

	if *all || *table == 1 {
		section(func() error { fmt.Print(bench.Table1()); return nil })
	}
	if *all || *table == 2 {
		section(func() error {
			_, text, err := bench.Table2(progs)
			fmt.Print(text)
			return err
		})
	}
	if *all || *table == 3 {
		section(func() error {
			_, text, err := bench.Table3(progs)
			fmt.Print(text)
			return err
		})
	}
	if *all || *table == 4 {
		section(func() error {
			_, text, err := bench.Table4()
			fmt.Print(text)
			return err
		})
	}
	if *all || *table == 5 {
		section(func() error {
			_, text, err := bench.Table5()
			fmt.Print(text)
			return err
		})
	}
	if *all || *figure == 1 {
		section(func() error {
			text, err := bench.Figure1(2000)
			fmt.Print(text)
			return err
		})
	}
	if *all || *figure == 2 {
		section(func() error {
			text, err := bench.Figure2()
			fmt.Print(text)
			return err
		})
	}
	if *all || *shuffle {
		section(func() error {
			_, text, err := bench.ShuffleStats(progs)
			fmt.Print(text)
			return err
		})
	}
	if *all || *sweep != "" {
		name := *sweep
		if name == "" {
			name = "tak"
		}
		section(func() error {
			p, err := bench.ByName(name)
			if err != nil {
				return err
			}
			_, text, err := bench.RegisterSweep(p)
			fmt.Print(text)
			return err
		})
	}
	if *all || *restores {
		section(func() error {
			_, text, err := bench.RestoreStudy(progs)
			fmt.Print(text)
			return err
		})
	}
	if *all || *branch {
		section(func() error {
			_, text, err := bench.BranchStudy(progs, 3)
			fmt.Print(text)
			return err
		})
	}
	if *all || *ablation {
		section(func() error {
			_, text, err := bench.SaveAlgorithmAblation(progs)
			fmt.Print(text)
			return err
		})
	}
	if *all || *verifySweep {
		section(func() error {
			text, err := bench.VerifySweep(progs)
			fmt.Print(text)
			return err
		})
	}
	if *all || *lintSweep {
		section(func() error {
			text, err := bench.LintSweep(progs)
			fmt.Print(text)
			return err
		})
	}
	if *all || *wasteTable {
		section(func() error {
			text, err := bench.WasteTable(progs)
			fmt.Print(text)
			return err
		})
		section(func() error {
			text, err := bench.InterprocAudit(progs)
			fmt.Print(text)
			return err
		})
	}
	if *all || *arenaSweep {
		section(func() error {
			text, err := bench.ArenaSweep(progs)
			fmt.Print(text)
			return err
		})
	}
	if *all || *compileTime {
		section(func() error {
			text, err := bench.CompileTimeStudy(progs, 3)
			fmt.Print(text)
			return err
		})
	}

	if *perfJSON != "" || *perfCompare != "" {
		ran = true
		if err := runPerf(progs, *suite, *perfJSON, *perfCompare, *perfThreshold, *allocThreshold); err != nil {
			fail(err)
		}
	}

	if *loadURL != "" {
		ran = true
		if err := runLoad(*loadURL, *loadClients, *loadDuration, *loadJSON, *loadCompare); err != nil {
			fail(err)
		}
	}

	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

// runLoad drives the sustained-load harness at a gate or replica and
// then writes the report, gates it against a committed baseline, or
// both (see DESIGN.md §16).
func runLoad(url string, clients int, duration time.Duration, jsonPath, comparePath string) error {
	rep, err := bench.RunLoad(bench.LoadOptions{
		URL:      url,
		Clients:  clients,
		Duration: duration,
		SLO:      bench.DefaultSLO,
	})
	if err != nil {
		return err
	}
	fmt.Printf("load: %d requests (%d errors) in %.1fs — %.1f rps, p50 %.2fms p95 %.2fms p99 %.2fms\n",
		rep.Requests, rep.Errors, rep.DurationSec, rep.ThroughputRPS, rep.P50Ms, rep.P95Ms, rep.P99Ms)
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (schema %s)\n", jsonPath, bench.LoadSchema)
	}
	if comparePath != "" {
		data, err := os.ReadFile(comparePath)
		if err != nil {
			return err
		}
		base, err := bench.ReadLoadReport(data)
		if err != nil {
			return err
		}
		if err := bench.CompareLoad(base, rep); err != nil {
			return err
		}
		fmt.Printf("load SLO gate passed against %s (p99<=%.0fms, >=%.0f rps, err<=%.2f%%)\n",
			comparePath, base.SLO.P99MsMax, base.SLO.ThroughputMin, base.SLO.ErrorRateMax*100)
	}
	return nil
}

// runPerf measures the perf report once and then writes it, gates it
// against a committed baseline, or both.
func runPerf(progs []*bench.Program, suite, jsonPath, comparePath string, wallThreshold, allocThreshold float64) error {
	rep, err := bench.MeasurePerf(progs, suite)
	if err != nil {
		return err
	}
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d programs, schema %s)\n", jsonPath, len(rep.Entries), bench.PerfSchema)
	}
	if comparePath != "" {
		data, err := os.ReadFile(comparePath)
		if err != nil {
			return err
		}
		base, err := bench.ReadPerfReport(data)
		if err != nil {
			return err
		}
		if err := bench.ComparePerf(base, rep, wallThreshold, allocThreshold); err != nil {
			return err
		}
		fmt.Printf("perf gate passed against %s (wall threshold %.0f%%, alloc threshold %.0f%%)\n",
			comparePath, wallThreshold*100, allocThreshold*100)
	}
	return nil
}

// suitePrograms selects the benchmark set.
func suitePrograms(suite string) ([]*bench.Program, error) {
	switch suite {
	case "full":
		return bench.All(), nil
	case "quick":
		var out []*bench.Program
		for _, n := range []string{"minieval", "typecheck", "tak", "cpstak", "deriv", "div-iter", "browse", "triang"} {
			p, err := bench.ByName(n)
			if err != nil {
				return nil, err
			}
			out = append(out, p)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("unknown suite %q (want full or quick)", suite)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "lsrbench:", err)
	os.Exit(1)
}
