// Command lsrgate fronts a fleet of lsrd replicas. It consistent-hash
// shards every /v1/ request by the same content-addressed cache key
// the replicas compute, so each replica's two-tier cache sees a stable
// partition of the key space; it probes backend health, fails over
// connection errors with jittered backoff, and serves its own
// Prometheus-text metrics.
//
// Usage:
//
//	lsrgate -backends http://h1:8377,http://h2:8377 [-addr :8376]
//	        [-vnodes 64] [-retries 2] [-health 2s] [-timeout 30s]
//
// Endpoints:
//
//	POST /v1/*     proxied to the owning replica (batch routes by its
//	               first item's key)
//	GET  /healthz  200 while at least one backend is routable
//	GET  /metrics  gate metrics (per-backend requests/latency/errors,
//	               health gauges, ring rebalances)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/gate"
)

func main() {
	var (
		addr     = flag.String("addr", ":8376", "listen address")
		backends = flag.String("backends", "", "comma-separated lsrd base URLs (required)")
		vnodes   = flag.Int("vnodes", gate.DefaultVNodes, "virtual nodes per backend")
		retries  = flag.Int("retries", 2, "max failover attempts after a connection error")
		health   = flag.Duration("health", 2*time.Second, "backend health-probe interval")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-attempt request deadline")
	)
	flag.Parse()

	var list []string
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			list = append(list, strings.TrimRight(b, "/"))
		}
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	g, err := gate.New(gate.Config{
		Backends:       list,
		VNodes:         *vnodes,
		MaxRetries:     *retries,
		HealthInterval: *health,
		Timeout:        *timeout,
	}, logger)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lsrgate:", err)
		os.Exit(2)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go g.RunHealthChecks(ctx)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           g.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() {
		logger.Info("lsrgate listening", "addr", *addr, "backends", len(list))
		errCh <- srv.ListenAndServe()
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "lsrgate:", err)
			os.Exit(1)
		}
	case sig := <-stop:
		logger.Info("shutting down", "signal", sig.String())
		shCtx, shCancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer shCancel()
		if err := srv.Shutdown(shCtx); err != nil {
			fmt.Fprintln(os.Stderr, "lsrgate: shutdown:", err)
			os.Exit(1)
		}
	}
}
