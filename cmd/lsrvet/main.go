// Command lsrvet is the source-level static analysis gate: it runs the
// internal/srclint suite over this repository's own Go code and exits
// nonzero on any finding, making hot-path allocation regressions,
// vm.Program mutation, and engine dispatch-table drift CI failures
// instead of latent bugs.
//
// Usage:
//
//	lsrvet                      # run all analyzers against the repo
//	lsrvet -json                # findings as internal/findings JSON
//	lsrvet -analyzers parity    # run a subset (alloc,immutable,parity)
//	lsrvet -write               # refresh ALLOC_BASELINE.json in place,
//	                            # preserving per-site notes
//
// The alloc-baseline analyzer shells out to `go build -gcflags=-m`, so
// lsrvet must run with the toolchain the committed baseline records
// (it refuses to diff across a different go MAJOR.MINOR).
//
// Exit codes:
//
//	0  clean (or baseline written)
//	1  findings
//	2  usage or analysis error
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/findings"
	"repro/internal/srclint"
)

func main() {
	var (
		root      = flag.String("root", ".", "module root to analyze")
		baseline  = flag.String("baseline", "ALLOC_BASELINE.json", "alloc baseline path (relative to -root)")
		analyzers = flag.String("analyzers", "", "comma-separated subset to run: alloc,immutable,parity (default all)")
		jsonOut   = flag.Bool("json", false, "emit findings as structured JSON")
		write     = flag.Bool("write", false, "measure escapes and rewrite the alloc baseline, preserving notes")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "lsrvet: unexpected arguments")
		flag.Usage()
		os.Exit(2)
	}

	opts := srclint.DefaultOptions(*root)
	opts.BaselinePath = *baseline
	if *analyzers != "" {
		opts.Analyzers = strings.Split(*analyzers, ",")
	}

	if *write {
		if err := writeBaseline(opts); err != nil {
			fmt.Fprintf(os.Stderr, "lsrvet: %v\n", err)
			os.Exit(2)
		}
		return
	}

	res, err := srclint.Run(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lsrvet: %v\n", err)
		os.Exit(2)
	}
	if res.Timing != "" {
		fmt.Fprintf(os.Stderr, "lsrvet: timing: %s\n", res.Timing)
	}
	for _, w := range res.Warnings {
		fmt.Fprintf(os.Stderr, "lsrvet: warning: %s\n", w)
	}
	if *jsonOut {
		if err := findings.WriteJSON(os.Stdout, res.Report()); err != nil {
			fmt.Fprintf(os.Stderr, "lsrvet: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, f := range res.Findings {
			if f.File != "" {
				fmt.Printf("%s:%d: %s: %s\n", f.File, f.Line, f.Kind, f.Msg)
			} else {
				fmt.Printf("%s: %s\n", f.Kind, f.Msg)
			}
		}
	}
	if len(res.Findings) > 0 {
		if !*jsonOut {
			fmt.Printf("lsrvet: %d finding(s)\n", len(res.Findings))
		}
		os.Exit(1)
	}
	if !*jsonOut {
		fmt.Println("lsrvet: clean")
	}
}

// writeBaseline refreshes ALLOC_BASELINE.json from a fresh escape
// measurement, carrying notes over from the existing file when present.
func writeBaseline(opts srclint.Options) error {
	path := opts.BaselinePath
	if !strings.HasPrefix(path, "/") {
		path = opts.Root + "/" + path
	}
	var old *srclint.AllocBaseline
	if data, err := os.ReadFile(path); err == nil {
		if old, err = srclint.ReadBaseline(data); err != nil {
			return err
		}
	}
	sites, version, err := srclint.MeasureEscapes(opts.Root, opts.Alloc)
	if err != nil {
		return err
	}
	b := srclint.NewBaseline(opts.Alloc, version, sites, old)
	var buf bytes.Buffer
	if err := b.WriteJSON(&buf); err != nil {
		return err
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		return err
	}
	fmt.Printf("lsrvet: wrote %s (%d sites)\n", path, len(b.Sites))
	return nil
}
