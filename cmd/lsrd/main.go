// Command lsrd is the compile-and-run daemon: a long-lived HTTP service
// over the allocator pipeline, built for concurrent workloads. It keeps
// a content-addressed compilation cache (identical sources under
// identical options compile once and are served from memory), bounds
// concurrency with a worker pool that sheds overload with 429, and runs
// every program under an execution fuel budget so a looping submission
// terminates deterministically instead of wedging a worker.
//
// Usage:
//
//	lsrd [-addr :8377] [-workers N] [-queue N] [-timeout 10s]
//	     [-fuel N] [-maxfuel N] [-cache N]
//
// Endpoints:
//
//	POST /v1/compile  {"source": "...", "options": {...}, "verify": bool, "dump": bool}
//	POST /v1/run      {"source": "...", "options": {...}, "max_steps": N, "validate": bool}
//	POST /v1/verify   {"source": "...", "options": {...}}
//	POST /v1/lint     {"source": "...", "options": {...}}
//	GET  /healthz     liveness probe
//	GET  /metrics     Prometheus text metrics
//
// /v1/verify and /v1/lint return the same findings JSON that
// `lsrc -verify -json` and `lsrc -lint -json` print.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	var (
		addr    = flag.String("addr", ":8377", "listen address")
		workers = flag.Int("workers", 0, "max concurrently executing requests (0 = GOMAXPROCS)")
		queue   = flag.Int("queue", 64, "max requests queued beyond the running ones before shedding 429")
		timeout = flag.Duration("timeout", 10*time.Second, "per-request deadline (queue wait)")
		fuel    = flag.Int64("fuel", 50_000_000, "default execution fuel (steps) for /v1/run")
		maxFuel = flag.Int64("maxfuel", 2_000_000_000, "largest fuel budget a request may ask for")
		cache   = flag.Int("cache", 256, "compilation cache capacity (programs)")
	)
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	svc := service.New(service.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		RequestTimeout: *timeout,
		DefaultFuel:    *fuel,
		MaxFuel:        *maxFuel,
		CacheEntries:   *cache,
	}, logger)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		logger.Info("lsrd listening", "addr", *addr)
		errCh <- srv.ListenAndServe()
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "lsrd:", err)
			os.Exit(1)
		}
	case sig := <-stop:
		logger.Info("shutting down", "signal", sig.String())
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "lsrd: shutdown:", err)
			os.Exit(1)
		}
	}
}
