// Command lsrd is the compile-and-run daemon: a long-lived HTTP service
// over the allocator pipeline, built for concurrent workloads. It keeps
// a two-tier content-addressed compilation cache (an in-memory LRU over
// an optional shared on-disk store, so restarts and horizontal replicas
// skip each other's compilations), bounds concurrency with a worker
// pool that sheds overload with 429 (Retry-After set; per-tenant
// admission quotas via the tenant header), and runs every program under
// an execution fuel budget so a looping submission terminates
// deterministically instead of wedging a worker. On SIGTERM it drains:
// admission stops (503 + Retry-After, /healthz reports draining so the
// gate routes away), in-flight work finishes, and the store index is
// flushed before exit.
//
// Usage:
//
//	lsrd [-addr :8377] [-workers N] [-queue N] [-timeout 10s]
//	     [-fuel N] [-maxfuel N] [-cache N] [-store DIR]
//	     [-batchmax N] [-tenant-inflight N] [-tenant-maxfuel N]
//	     [-draintimeout 20s]
//
// Endpoints:
//
//	POST /v1/compile  {"source": "...", "options": {...}, "verify": bool, "dump": bool}
//	POST /v1/batch    {"items": [compile requests...]}
//	POST /v1/run      {"source": "...", "options": {...}, "max_steps": N, "validate": bool}
//	POST /v1/verify   {"source": "...", "options": {...}}
//	POST /v1/lint     {"source": "...", "options": {...}}
//	GET  /healthz     liveness probe (503 while draining)
//	GET  /metrics     Prometheus text metrics
//
// /v1/verify and /v1/lint return the same findings JSON that
// `lsrc -verify -json` and `lsrc -lint -json` print.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	var (
		addr    = flag.String("addr", ":8377", "listen address")
		workers = flag.Int("workers", 0, "max concurrently executing requests (0 = GOMAXPROCS)")
		queue   = flag.Int("queue", 64, "max requests queued beyond the running ones before shedding 429")
		timeout = flag.Duration("timeout", 10*time.Second, "per-request deadline (queue wait)")
		fuel    = flag.Int64("fuel", 50_000_000, "default execution fuel (steps) for /v1/run")
		maxFuel = flag.Int64("maxfuel", 2_000_000_000, "largest fuel budget a request may ask for")
		cache   = flag.Int("cache", 256, "compilation cache capacity (programs)")

		storeDir = flag.String("store", "", "on-disk compilation store directory (empty = memory-only)")
		batchMax = flag.Int("batchmax", 64, "max units per /v1/batch request")
		tenantIn = flag.Int("tenant-inflight", 0, "per-tenant admitted-request quota (0 = off)")
		tenantMF = flag.Int64("tenant-maxfuel", 0, "per-tenant fuel ceiling for /v1/run (0 = off)")
		drainTO  = flag.Duration("draintimeout", 20*time.Second, "max time to finish in-flight work on SIGTERM")
	)
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	svc, err := service.NewWithError(service.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		RequestTimeout: *timeout,
		DefaultFuel:    *fuel,
		MaxFuel:        *maxFuel,
		CacheEntries:   *cache,
		StoreDir:       *storeDir,
		MaxBatchItems:  *batchMax,
		TenantInflight: *tenantIn,
		TenantMaxFuel:  *tenantMF,
	}, logger)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lsrd:", err)
		os.Exit(1)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		logger.Info("lsrd listening", "addr", *addr, "store", *storeDir)
		errCh <- srv.ListenAndServe()
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "lsrd:", err)
			os.Exit(1)
		}
	case sig := <-stop:
		// Graceful drain: stop admitting (everything new sheds with
		// 503/draining and /healthz flips, so the gate and LBs route
		// away), let in-flight requests finish, flush the store index,
		// then close the listener.
		logger.Info("draining", "signal", sig.String())
		svc.StartDrain()
		ctx, cancel := context.WithTimeout(context.Background(), *drainTO)
		defer cancel()
		if err := svc.DrainWait(ctx); err != nil {
			logger.Error("drain incomplete", "err", err)
		}
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "lsrd: shutdown:", err)
			os.Exit(1)
		}
		logger.Info("drained cleanly")
	}
}
