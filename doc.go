// Package repro reproduces "Register Allocation Using Lazy Saves, Eager
// Restores, and Greedy Shuffling" (Burger, Waddell, Dybvig; PLDI'95): a
// mini-Scheme compiler whose register allocator implements the paper's
// three techniques, a simulated machine that measures their effect, and
// a benchmark harness that regenerates the paper's tables and figures.
//
// The package itself holds only the root benchmark suite (bench_test.go);
// the implementation lives under internal/ — see ARCHITECTURE.md for the
// package map and DESIGN.md for the design rationale.
package repro
